// Package pipeline is the declarative module-DAG engine the diagnosis
// workflows run on. A pipeline is a set of named modules with explicit
// dependency declarations; the scheduler topologically orders them and
// runs independent modules concurrently, with context cancellation and
// error propagation at module granularity. Modules communicate through a
// blackboard of named outputs, caching is scheduler-level middleware
// (a module with a CacheSpec can be satisfied without running), and
// every run produces a Trace recording per-module wall time, cache
// hits, and skip/short-circuit decisions.
//
// The engine is strategy-agnostic: the paper's six-module workflow, its
// plan-change short circuit, and the silo baseline tools all register as
// pipelines over the same blackboard (see internal/pipelines), so new
// diagnosis strategies are a registration, not a rewrite.
package pipeline

import (
	"context"
	"fmt"
	"sync"
	"time"

	"diads/internal/telemetry"
)

// Blackboard is the shared result space of one pipeline run: each
// module's output is stored under the module's name. It is safe for
// concurrent use by the scheduler's worker goroutines.
type Blackboard struct {
	mu   sync.RWMutex
	vals map[string]any
}

// NewBlackboard returns an empty blackboard.
func NewBlackboard() *Blackboard {
	return &Blackboard{vals: make(map[string]any)}
}

// Put stores a value under a name, replacing any previous value. Drivers
// use it to seed pipeline inputs before a run.
func (b *Blackboard) Put(name string, v any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.vals[name] = v
}

// Has reports whether a value is stored under the name.
func (b *Blackboard) Has(name string) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.vals[name]
	return ok
}

func (b *Blackboard) get(name string) (any, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.vals[name]
	return v, ok
}

// Get returns the value stored under the name, typed. It reports false
// when the name is absent or holds a different type.
func Get[T any](b *Blackboard, name string) (T, bool) {
	v, ok := b.get(name)
	if !ok {
		var zero T
		return zero, false
	}
	t, ok := v.(T)
	return t, ok
}

// Halt is the short-circuit signal: a module returns Halt{Out: v} to
// record v as its output and stop the pipeline — modules not yet started
// are marked skipped and the run completes successfully. The paper's
// Module PD uses it when the plan changed: plan-change analysis is the
// whole diagnosis and the drill-down modules never run.
type Halt struct{ Out any }

// CacheSpec is the scheduler-level caching middleware: before running a
// module the engine derives a key from the blackboard, consults the
// cache, and on a hit installs the cached value as the module's output
// without running it; on a miss the freshly-computed output is stored
// back. The trace records the outcome per module. When a cached module
// halts, the engine stores (and later recognizes) the Halt wrapper
// itself, so Put/Get bridges on such modules must pass any-typed values
// through unmodified.
type CacheSpec struct {
	// Key derives the cache key from the blackboard. ok=false disables
	// caching for this run (e.g. no cache configured on the input).
	Key func(bb *Blackboard) (key string, ok bool)
	// Get and Put bridge to the underlying typed cache.
	Get func(bb *Blackboard, key string) (any, bool)
	Put func(bb *Blackboard, key string, v any)
}

// Module is one node of the DAG.
type Module struct {
	// Name identifies the module and keys its output on the blackboard.
	Name string
	// Deps name the modules whose outputs must exist before Run; they
	// replace hand-rolled "module X requires module Y" precondition
	// checks inside module bodies.
	Deps []string
	// Run computes the module's output from the blackboard. Return
	// Halt{Out: v} to short-circuit the rest of the pipeline.
	Run func(ctx context.Context, bb *Blackboard) (any, error)
	// Cache, when non-nil, lets the scheduler satisfy the module from a
	// cache instead of running it.
	Cache *CacheSpec
}

// Status classifies a module's outcome within one run.
type Status string

const (
	// StatusRan: the module executed and produced its output.
	StatusRan Status = "ran"
	// StatusCacheHit: the output came from the module's cache.
	StatusCacheHit Status = "hit"
	// StatusSkipped: an upstream module short-circuited the pipeline.
	StatusSkipped Status = "skipped"
	// StatusFailed: the module returned an error.
	StatusFailed Status = "failed"
	// StatusNotRun: the run ended (error or cancellation) before the
	// module was scheduled.
	StatusNotRun Status = "not-run"
)

// CacheOutcome records whether the caching middleware was consulted.
type CacheOutcome string

const (
	CacheNone CacheOutcome = ""
	CacheHit  CacheOutcome = "hit"
	CacheMiss CacheOutcome = "miss"
)

// ModuleTrace is one module's entry in a run's trace.
type ModuleTrace struct {
	Module string
	Status Status
	Cache  CacheOutcome
	// Wall is the module's measured wall time (zero when never started).
	Wall time.Duration
	// Note carries the skip reason, short-circuit marker, or error text.
	Note string
}

// Trace is the observability record of one pipeline run: modules in
// topological order with status, wall time, and cache outcome. The
// online service threads it through incidents and the console renders it
// as the workflow-timing panel.
type Trace struct {
	Pipeline string
	// TraceID, when set, ties this run to the slowdown event it
	// diagnoses: the monitor mints the ID, diag.Input carries it in, and
	// the service records the run's module walls as spans under it.
	TraceID string
	Total   time.Duration
	Modules []ModuleTrace
}

// Module returns the trace entry for the named module, or nil.
func (t *Trace) Module(name string) *ModuleTrace {
	for i := range t.Modules {
		if t.Modules[i].Module == name {
			return &t.Modules[i]
		}
	}
	return nil
}

// Append adds one module entry (the interactive workflow accumulates its
// steps this way).
func (t *Trace) Append(mt ModuleTrace) { t.Modules = append(t.Modules, mt) }

// Pipeline is a validated, topologically-ordered module DAG ready to
// run. Pipelines are immutable after New and safe to share across
// goroutines; all per-run state lives on the Blackboard and Trace.
type Pipeline struct {
	name  string
	mods  []*Module // topological order, registration order among ties
	index map[string]*Module
}

// New validates the modules (unique names, declared dependencies exist,
// no cycles) and returns the pipeline.
func New(name string, mods ...*Module) (*Pipeline, error) {
	if name == "" {
		return nil, fmt.Errorf("pipeline: empty pipeline name")
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("pipeline %s: no modules", name)
	}
	index := make(map[string]*Module, len(mods))
	for _, m := range mods {
		if m.Name == "" {
			return nil, fmt.Errorf("pipeline %s: module with empty name", name)
		}
		if m.Run == nil {
			return nil, fmt.Errorf("pipeline %s: module %s has no Run", name, m.Name)
		}
		if _, dup := index[m.Name]; dup {
			return nil, fmt.Errorf("pipeline %s: duplicate module %s", name, m.Name)
		}
		index[m.Name] = m
	}
	for _, m := range mods {
		for _, d := range m.Deps {
			if _, ok := index[d]; !ok {
				return nil, fmt.Errorf("pipeline %s: module %s depends on unknown module %s", name, m.Name, d)
			}
		}
	}
	order, err := toposort(name, mods, index)
	if err != nil {
		return nil, err
	}
	return &Pipeline{name: name, mods: order, index: index}, nil
}

// toposort is Kahn's algorithm with a stable tie-break: among ready
// modules, registration order wins, so scheduling is deterministic.
func toposort(name string, mods []*Module, index map[string]*Module) ([]*Module, error) {
	indeg := make(map[string]int, len(mods))
	for _, m := range mods {
		indeg[m.Name] = len(m.Deps)
	}
	var order []*Module
	done := make(map[string]bool, len(mods))
	for len(order) < len(mods) {
		progressed := false
		for _, m := range mods {
			if done[m.Name] || indeg[m.Name] > 0 {
				continue
			}
			done[m.Name] = true
			order = append(order, m)
			for _, n := range mods {
				for _, d := range n.Deps {
					if d == m.Name {
						indeg[n.Name]--
					}
				}
			}
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("pipeline %s: dependency cycle among modules", name)
		}
	}
	return order, nil
}

// Name returns the pipeline's registry name.
func (p *Pipeline) Name() string { return p.name }

// ModuleNames returns the module names in topological order.
func (p *Pipeline) ModuleNames() []string {
	out := make([]string, len(p.mods))
	for i, m := range p.mods {
		out[i] = m.Name
	}
	return out
}

// observeModule records one module outcome into the process-wide
// telemetry registry: a wall-time histogram and an outcome counter per
// (pipeline, module). Recording at the engine means every execution path
// — batch runs, interactive steps, silo baselines — lands in the same
// series without per-driver bookkeeping. Pure side channel: nothing in
// a Trace or a Result reads these instruments back.
func observeModule(pipeline, module string, status Status, wall time.Duration) {
	reg := telemetry.Default()
	labels := telemetry.Labels{"pipeline": pipeline, "module": module}
	reg.Histogram("diads_module_wall_seconds",
		"Per-module wall time of diagnosis pipeline runs.", labels, nil).
		Observe(wall.Seconds())
	reg.Counter("diads_module_outcomes_total",
		"Module outcomes (ran, hit, skipped, failed, not-run) per pipeline.",
		telemetry.Labels{"pipeline": pipeline, "module": module, "status": string(status)}).
		Inc()
}

// execOut is the outcome of executing (or cache-satisfying) one module.
type execOut struct {
	halt  bool
	err   error
	wall  time.Duration
	cache CacheOutcome
}

// exec runs one module: cache probe, run, cache fill, blackboard commit.
// A halting module's output is cached as the Halt wrapper, so a later
// cache hit short-circuits exactly as the original run did.
func (p *Pipeline) exec(ctx context.Context, m *Module, bb *Blackboard) execOut {
	t0 := time.Now()
	o := execOut{}
	key := ""
	if m.Cache != nil {
		if k, ok := m.Cache.Key(bb); ok {
			if v, hit := m.Cache.Get(bb, k); hit {
				if h, ok := v.(Halt); ok {
					v, o.halt = h.Out, true
				}
				bb.Put(m.Name, v)
				o.cache = CacheHit
				o.wall = time.Since(t0)
				return o
			}
			o.cache = CacheMiss
			key = k
		}
	}
	out, err := m.Run(ctx, bb)
	if h, ok := out.(Halt); ok {
		out, o.halt = h.Out, true
	}
	if err != nil {
		o.err = err
		o.wall = time.Since(t0)
		return o
	}
	bb.Put(m.Name, out)
	if o.cache == CacheMiss {
		if o.halt {
			m.Cache.Put(bb, key, Halt{Out: out})
		} else {
			m.Cache.Put(bb, key, out)
		}
	}
	o.wall = time.Since(t0)
	return o
}

// RunModule executes a single module against the blackboard — the
// interactive mode, where a driver steps through the DAG one module at a
// time and may edit intermediate outputs between steps. Dependencies are
// enforced from the declarations: a module whose inputs are missing
// fails without running.
func (p *Pipeline) RunModule(ctx context.Context, name string, bb *Blackboard) (ModuleTrace, error) {
	m := p.index[name]
	if m == nil {
		return ModuleTrace{}, fmt.Errorf("pipeline %s: unknown module %q", p.name, name)
	}
	for _, d := range m.Deps {
		if !bb.Has(d) {
			return ModuleTrace{Module: name, Status: StatusNotRun},
				fmt.Errorf("pipeline %s: module %s requires module %s, which has not run", p.name, name, d)
		}
	}
	if err := ctx.Err(); err != nil {
		return ModuleTrace{Module: name, Status: StatusNotRun},
			fmt.Errorf("pipeline %s: canceled before module %s: %w", p.name, name, err)
	}
	e := p.exec(ctx, m, bb)
	mt := ModuleTrace{Module: name, Wall: e.wall, Cache: e.cache}
	switch {
	case e.err != nil:
		mt.Status, mt.Note = StatusFailed, e.err.Error()
		observeModule(p.name, name, mt.Status, mt.Wall)
		return mt, fmt.Errorf("pipeline %s: module %s: %w", p.name, name, e.err)
	case e.cache == CacheHit:
		mt.Status = StatusCacheHit
	default:
		mt.Status = StatusRan
	}
	if e.halt {
		mt.Note = "short-circuit"
	}
	observeModule(p.name, name, mt.Status, mt.Wall)
	return mt, nil
}

// Options tune one pipeline run.
type Options struct {
	// MaxParallel caps concurrently-executing modules. <=0 means
	// unbounded (DAG width is the effective bound); 1 is sequential.
	MaxParallel int
	// OnStart, when non-nil, observes each module launch in scheduling
	// order (tests use it to cancel mid-flight deterministically).
	OnStart func(module string)
}

// Run executes the full pipeline: modules start as soon as their
// dependencies complete, independent modules run concurrently up to
// MaxParallel, a module error cancels the rest of the run, and a Halt
// short-circuits it. The returned Trace is always non-nil and lists
// every module in topological order.
func (p *Pipeline) Run(ctx context.Context, bb *Blackboard, opts Options) (*Trace, error) {
	maxPar := opts.MaxParallel
	if maxPar <= 0 {
		maxPar = len(p.mods)
	}
	t0 := time.Now()
	trace := &Trace{Pipeline: p.name, Modules: make([]ModuleTrace, len(p.mods))}
	for i, m := range p.mods {
		trace.Modules[i] = ModuleTrace{Module: m.Name, Status: StatusNotRun}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type doneMsg struct {
		idx int
		e   execOut
	}
	doneCh := make(chan doneMsg)
	satisfied := make(map[string]bool, len(p.mods))
	started := make(map[string]bool, len(p.mods))
	running := 0
	var firstErr error
	haltedBy := ""

	ready := func() []int {
		if firstErr != nil || haltedBy != "" || runCtx.Err() != nil {
			return nil
		}
		var out []int
		for i, m := range p.mods {
			if started[m.Name] {
				continue
			}
			ok := true
			for _, d := range m.Deps {
				if !satisfied[d] {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, i)
			}
		}
		return out
	}

	for {
		for _, i := range ready() {
			if running >= maxPar {
				break
			}
			m := p.mods[i]
			started[m.Name] = true
			running++
			if opts.OnStart != nil {
				opts.OnStart(m.Name)
			}
			go func(i int, m *Module) {
				doneCh <- doneMsg{idx: i, e: p.exec(runCtx, m, bb)}
			}(i, m)
		}
		if running == 0 {
			break
		}
		d := <-doneCh
		running--
		m := p.mods[d.idx]
		mt := &trace.Modules[d.idx]
		mt.Wall, mt.Cache = d.e.wall, d.e.cache
		switch {
		case d.e.err != nil:
			mt.Status, mt.Note = StatusFailed, d.e.err.Error()
			if firstErr == nil {
				firstErr = fmt.Errorf("pipeline %s: module %s: %w", p.name, m.Name, d.e.err)
				cancel() // propagate: no new modules, in-flight ones see the cancel
			}
		case d.e.cache == CacheHit:
			mt.Status = StatusCacheHit
			satisfied[m.Name] = true
		default:
			mt.Status = StatusRan
			satisfied[m.Name] = true
		}
		observeModule(p.name, m.Name, mt.Status, mt.Wall)
		if d.e.halt && d.e.err == nil && haltedBy == "" {
			haltedBy = m.Name
			mt.Note = "short-circuit"
		}
	}

	if haltedBy != "" && firstErr == nil && ctx.Err() == nil {
		for i, m := range p.mods {
			if !started[m.Name] {
				trace.Modules[i].Status = StatusSkipped
				trace.Modules[i].Note = "short-circuited by " + haltedBy
				observeModule(p.name, m.Name, StatusSkipped, 0)
			}
		}
	}
	trace.Total = time.Since(t0)
	if firstErr != nil {
		return trace, firstErr
	}
	if err := ctx.Err(); err != nil {
		return trace, fmt.Errorf("pipeline %s: canceled: %w", p.name, err)
	}
	return trace, nil
}

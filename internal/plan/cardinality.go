package plan

import "math"

// Cardinalities holds per-operator row counts and execution counts for one
// query run, computed either from optimizer statistics (estimates) or from
// actual table cardinalities (actuals).
type Cardinalities struct {
	// RowsPerExec is the operator's output rows per execution.
	RowsPerExec map[int]float64
	// Loops is how many times the operator executes per query run.
	// Operators inside a correlated subplan run once per row of the
	// attachment operator's outer input.
	Loops map[int]float64
	// Total is RowsPerExec * Loops — the record count the paper's
	// per-operator monitoring reports.
	Total map[int]float64
}

// TotalRows returns the operator's total output rows for the run.
func (c Cardinalities) TotalRows(id int) float64 { return c.Total[id] }

// Cardinality computes per-operator cardinalities for p.
//
// rowsOf supplies table cardinalities (statistics snapshot for estimates,
// live catalog for actuals). absScale supplies the growth ratio applied to
// AbsRows leaves (actual rows / statistics rows; use 1 for estimates).
//
// Cardinality semantics per operator type:
//   - Seq/Index Scan: table rows x Sel, or AbsRows x absScale.
//   - Joins: Fanout x outer-child rows.
//   - Sort/Hash/Materialize: pass through child rows.
//   - Aggregate: 1 row per execution.
//   - Limit: min(LimitN, child rows).
//
// Nested-loop inners are treated as parameterized lookups: every child of
// an operator executes once per execution of the operator itself, with the
// per-row lookup already captured by the leaf's AbsRows.
func Cardinality(p *Plan, rowsOf func(table string) int64, absScale func(table string) float64) Cardinalities {
	c := Cardinalities{
		RowsPerExec: make(map[int]float64, len(p.nodes)),
		Loops:       make(map[int]float64, len(p.nodes)),
		Total:       make(map[int]float64, len(p.nodes)),
	}

	var rows func(n *Node) float64
	rows = func(n *Node) float64 {
		var out float64
		switch {
		case n.IsLeaf():
			if n.AbsRows > 0 {
				out = n.AbsRows * absScale(n.Table)
			} else {
				out = float64(rowsOf(n.Table)) * n.Sel
			}
		case n.Type == OpAggregate:
			for _, ch := range n.Children {
				rows(ch)
			}
			out = 1
		case n.Type == OpLimit:
			child := rows(n.Children[0])
			out = math.Min(float64(n.LimitN), child)
			if n.LimitN <= 0 {
				out = child
			}
		case n.Type == OpHashJoin || n.Type == OpMergeJoin || n.Type == OpNestedLoop:
			outer := rows(n.Children[0])
			for _, ch := range n.Children[1:] {
				rows(ch)
			}
			out = n.EffectiveFanout() * outer
		default: // Sort, Hash, Materialize pass through.
			out = rows(n.Children[0])
		}
		// Subplans contribute no rows to their owner; walk for coverage.
		for _, s := range n.SubPlans {
			rows(s)
		}
		if out < 0 {
			out = 0
		}
		c.RowsPerExec[n.ID] = out
		return out
	}
	rows(p.Root)

	var loops func(n *Node, l float64)
	loops = func(n *Node, l float64) {
		c.Loops[n.ID] = l
		for _, ch := range n.Children {
			loops(ch, l)
		}
		for _, s := range n.SubPlans {
			subLoops := l
			if len(n.Children) > 0 {
				subLoops = l * math.Max(1, c.RowsPerExec[n.Children[0].ID])
			}
			loops(s, subLoops)
		}
	}
	loops(p.Root, 1)

	for id, r := range c.RowsPerExec {
		c.Total[id] = r * c.Loops[id]
	}
	return c
}

// EstimateInto computes estimate cardinalities with rowsOf and stores them
// on the plan's nodes (EstRows = total estimated rows), returning the
// cardinalities.
func EstimateInto(p *Plan, rowsOf func(table string) int64) Cardinalities {
	c := Cardinality(p, rowsOf, func(string) float64 { return 1 })
	for _, n := range p.Nodes() {
		n.EstRows = c.Total[n.ID]
	}
	return c
}

// Package plan represents query execution plans: operator trees with
// pre-order operator numbering (O1, O2, ...), structural signatures for
// plan-change detection (Module PD), and the builders for the TPC-H plans
// the reproduction runs — most importantly the 25-operator, 9-leaf Query 2
// plan of the paper's Figure 1.
package plan

import "fmt"

// OpType is a physical plan operator type.
type OpType string

// Operator types.
const (
	OpLimit       OpType = "Limit"
	OpSort        OpType = "Sort"
	OpHashJoin    OpType = "Hash Join"
	OpMergeJoin   OpType = "Merge Join"
	OpNestedLoop  OpType = "Nested Loop"
	OpHash        OpType = "Hash"
	OpMaterialize OpType = "Materialize"
	OpAggregate   OpType = "Aggregate"
	OpSeqScan     OpType = "Seq Scan"
	OpIndexScan   OpType = "Index Scan"
)

// IsLeaf reports whether the operator type reads base data.
func (t OpType) IsLeaf() bool { return t == OpSeqScan || t == OpIndexScan }

// IsBlockingBuild reports whether the operator records exclusive
// (own-work-only) time rather than inclusive elapsed time. Hash builds,
// materializations and aggregations appear in instrumented plans as their
// own build/aggregation cost; the wait for their inputs is attributed to
// the consuming operator. All other operators record inclusive
// start-to-stop elapsed time, as the paper's per-operator monitoring does.
func (t OpType) IsBlockingBuild() bool {
	return t == OpHash || t == OpMaterialize || t == OpAggregate
}

// Node is one operator in a plan tree.
type Node struct {
	// ID is the pre-order operator number (1-based), assigned by
	// Plan.finalize; the paper's O8 is the node with ID 8.
	ID   int
	Type OpType
	// Table and Index name the base relation and access index for leaves.
	Table string
	Index string
	// Alias distinguishes repeated uses of a table (ps2, s2, n2, r2).
	Alias string
	// Sel is, for leaves, the fraction of the table's rows produced per
	// execution. Internal nodes ignore it.
	Sel float64
	// AbsRows is, for leaves, an absolute output row count per execution
	// (used for key lookups with a known fan-out, e.g. the 4 partsupp rows
	// per part in the Q2 subplan). When set it overrides Sel, scaled by
	// any growth of the table relative to the statistics snapshot.
	AbsRows float64
	// Fanout is, for join nodes, the output rows per outer-child row.
	// Pass-through nodes use 1.
	Fanout float64
	// LimitN caps output rows for Limit nodes.
	LimitN int64
	// Loops is how many times this operator executes per query run
	// (subplan operators run once per outer row). Zero means 1.
	Loops float64
	// EstRows is the optimizer's cardinality estimate, filled when a plan
	// is costed against a statistics snapshot.
	EstRows float64

	Children []*Node
	// SubPlans are correlated subqueries attached to this operator. In
	// pre-order numbering they follow all regular descendants.
	SubPlans []*Node
}

// OpName returns the paper-style operator name, e.g. "O8".
func (n *Node) OpName() string { return fmt.Sprintf("O%d", n.ID) }

// Label renders the EXPLAIN-style description of the node.
func (n *Node) Label() string {
	switch {
	case n.Type == OpIndexScan:
		return fmt.Sprintf("%s using %s on %s%s", n.Type, n.Index, n.Table, aliasSuffix(n.Alias))
	case n.Type == OpSeqScan:
		return fmt.Sprintf("%s on %s%s", n.Type, n.Table, aliasSuffix(n.Alias))
	case n.Type == OpLimit && n.LimitN > 0:
		return fmt.Sprintf("%s (%d)", n.Type, n.LimitN)
	default:
		return string(n.Type)
	}
}

func aliasSuffix(a string) string {
	if a == "" {
		return ""
	}
	return " " + a
}

// IsLeaf reports whether the node reads base data.
func (n *Node) IsLeaf() bool { return n.Type.IsLeaf() }

// EffectiveLoops returns Loops, defaulting to 1.
func (n *Node) EffectiveLoops() float64 {
	if n.Loops <= 0 {
		return 1
	}
	return n.Loops
}

// EffectiveFanout returns Fanout, defaulting to 1.
func (n *Node) EffectiveFanout() float64 {
	if n.Fanout <= 0 {
		return 1
	}
	return n.Fanout
}

package plan

import "diads/internal/dbsys"

// AccessSpec selects how a leaf reads its table.
type AccessSpec struct {
	Type  OpType // OpIndexScan or OpSeqScan
	Index string // index name when Type is OpIndexScan
}

// Q2Choices are the optimizer decision points for the TPC-H Q2 plan. The
// zero value is invalid; use DefaultQ2Choices for the paper's Figure 1
// plan.
type Q2Choices struct {
	// PartAccess drives O4.
	PartAccess AccessSpec
	// PartsuppAccess drives the main-tree partsupp read (O8 in the
	// default shape).
	PartsuppAccess AccessSpec
	// SubPartsuppAccess drives the subplan partsupp read (O22).
	SubPartsuppAccess AccessSpec
	// SubNationAccess drives the subplan nation lookup (O19).
	SubNationAccess AccessSpec
	// SubSupplierAccess drives the subplan supplier lookup (O23).
	SubSupplierAccess AccessSpec
	// MainJoin is the strategy for the top part-to-partsupp join (O3):
	// OpHashJoin or OpNestedLoop.
	MainJoin OpType
}

// DefaultQ2Choices returns the access and join choices that produce the
// paper's 25-operator, 9-leaf plan.
func DefaultQ2Choices() Q2Choices {
	return Q2Choices{
		PartAccess:        AccessSpec{Type: OpIndexScan, Index: dbsys.IdxPartType},
		PartsuppAccess:    AccessSpec{Type: OpIndexScan, Index: dbsys.IdxPartsuppPart},
		SubPartsuppAccess: AccessSpec{Type: OpIndexScan, Index: dbsys.IdxPartsuppPart},
		SubNationAccess:   AccessSpec{Type: OpIndexScan, Index: dbsys.IdxNationKey},
		SubSupplierAccess: AccessSpec{Type: OpIndexScan, Index: dbsys.IdxSupplierKey},
		MainJoin:          OpHashJoin,
	}
}

// Selectivities and fanouts for Q2, expressed scale-independently. The
// absolute row counts they imply at scale factor 1 are noted inline.
const (
	q2PartSel      = 0.004 // 800 parts match the size+type predicate at SF 1
	q2PartsuppSel  = 0.004 // their 3,200 partsupp rows
	q2RegionSel    = 0.2   // 1 of 5 regions
	q2SupplierFrac = 0.2   // suppliers surviving the region filter
	q2SubFanout    = 4     // partsupp rows per part (subplan, per loop)
)

// BuildQ2 constructs the TPC-H Q2 plan for the given choices. With
// DefaultQ2Choices the resulting tree reproduces Figure 1 exactly:
// operators O1..O25 with leaves {O4, O8, O10, O13, O15, O19, O22, O23,
// O25}, where O8 and O22 read partsupp (volume V1) and the other seven
// leaves read V2 tables.
func BuildQ2(ch Q2Choices) *Plan {
	partsuppMain := leafFor(ch.PartsuppAccess, dbsys.TPartsupp, "", q2PartsuppSel, 0)
	// A merge join needs its outer input ordered: an index scan delivers
	// order, a seq scan needs an explicit sort.
	var mergeOuter *Node
	if ch.PartsuppAccess.Type == OpIndexScan {
		mergeOuter = partsuppMain
	} else {
		mergeOuter = &Node{Type: OpSort, Children: []*Node{partsuppMain}}
	}

	mainInner := &Node{ // supplier-nation-region side of O6
		Type: OpHash,
		Children: []*Node{{
			Type:   OpHashJoin,
			Fanout: 1,
			Children: []*Node{
				{Type: OpSeqScan, Table: dbsys.TNation, Sel: 1},
				{Type: OpHash, Children: []*Node{
					{Type: OpSeqScan, Table: dbsys.TRegion, Sel: q2RegionSel},
				}},
			},
		}},
	}

	joinSupp := &Node{ // O7: partsupp x supplier
		Type:   OpMergeJoin,
		Fanout: 1,
		Children: []*Node{
			mergeOuter,
			{Type: OpSort, Children: []*Node{
				{Type: OpSeqScan, Table: dbsys.TSupplier, Sel: 1},
			}},
		},
	}

	joinRegion := &Node{ // O6: (partsupp x supplier) x (nation x region)
		Type:     OpHashJoin,
		Fanout:   q2SupplierFrac,
		Children: []*Node{joinSupp, mainInner},
	}

	subPartsupp := leafFor(ch.SubPartsuppAccess, dbsys.TPartsupp, "ps2", 0, q2SubFanout)
	// O21: the partsupp index delivers partkey order, but the merge join
	// with supplier needs suppkey order, so a sort is always required.
	subMergeOuter := &Node{Type: OpSort, Children: []*Node{subPartsupp}}

	subplan := &Node{ // O16: min(ps_supplycost) for the current part
		Type: OpAggregate,
		Children: []*Node{{
			Type:   OpNestedLoop, // O17: x region (materialized)
			Fanout: q2RegionSel,
			Children: []*Node{
				{
					Type:   OpNestedLoop, // O18: x nation
					Fanout: 1,
					Children: []*Node{
						subNation(ch.SubNationAccess),
						{
							Type:   OpMergeJoin, // O20: ps2 x s2
							Fanout: 1,
							Children: []*Node{
								subMergeOuter, // O21: Sort over O22
								subSupplier(ch.SubSupplierAccess),
							},
						},
					},
				},
				{Type: OpMaterialize, Children: []*Node{ // O24
					{Type: OpSeqScan, Table: dbsys.TRegion, Alias: "r2", Sel: 1},
				}},
			},
		}},
	}

	part := leafFor(ch.PartAccess, dbsys.TPart, "", q2PartSel, 0)

	var mainJoin *Node
	if ch.MainJoin == OpNestedLoop {
		mainJoin = &Node{
			Type:     OpNestedLoop,
			Fanout:   1,
			Children: []*Node{part, joinRegion},
			SubPlans: []*Node{subplan},
		}
	} else {
		mainJoin = &Node{ // O3
			Type:   OpHashJoin,
			Fanout: 1,
			Children: []*Node{
				part, // O4
				{Type: OpHash, Children: []*Node{joinRegion}}, // O5
			},
			SubPlans: []*Node{subplan},
		}
	}

	root := &Node{
		Type:   OpLimit,
		LimitN: 100,
		Children: []*Node{{
			Type:     OpSort,
			Children: []*Node{mainJoin},
		}},
	}
	return New("Q2", root)
}

// leafFor builds a scan node from an access spec. Exactly one of sel or
// absRows should be non-zero.
func leafFor(spec AccessSpec, table, alias string, sel, absRows float64) *Node {
	n := &Node{Type: spec.Type, Table: table, Alias: alias, Sel: sel, AbsRows: absRows}
	if spec.Type == OpIndexScan {
		n.Index = spec.Index
	}
	return n
}

// subNation builds the subplan's per-loop nation lookup (O19 by default).
func subNation(spec AccessSpec) *Node {
	return leafFor(spec, dbsys.TNation, "n2", 0, 25)
}

// subSupplier builds the subplan's per-loop supplier lookup (O23 by
// default).
func subSupplier(spec AccessSpec) *Node {
	return leafFor(spec, dbsys.TSupplier, "s2", 0, q2SubFanout)
}

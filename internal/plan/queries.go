package plan

import "diads/internal/dbsys"

// BuildQ6 constructs a small TPC-H Q6-style plan: an aggregate over a
// filtered lineitem scan. It serves as background database workload and
// populates the query-selection screen with realistic variety.
func BuildQ6() *Plan {
	return New("Q6", &Node{
		Type: OpAggregate,
		Children: []*Node{
			{Type: OpSeqScan, Table: dbsys.TLineitem, Sel: 0.02},
		},
	})
}

// BuildQ14 constructs a TPC-H Q14-style plan: promotion revenue, a hash
// join of filtered lineitem with part under an aggregate.
func BuildQ14() *Plan {
	return New("Q14", &Node{
		Type: OpAggregate,
		Children: []*Node{{
			Type:   OpHashJoin,
			Fanout: 1,
			Children: []*Node{
				{Type: OpSeqScan, Table: dbsys.TLineitem, Sel: 0.012},
				{Type: OpHash, Children: []*Node{
					{Type: OpSeqScan, Table: dbsys.TPart, Sel: 1},
				}},
			},
		}},
	})
}

// BuildQ5 constructs a TPC-H Q5-style plan: local supplier volume, a
// multiway join over customer, orders, lineitem, supplier, nation, region
// with a final sort.
func BuildQ5() *Plan {
	nationRegion := &Node{
		Type:   OpHashJoin,
		Fanout: 1,
		Children: []*Node{
			{Type: OpSeqScan, Table: dbsys.TNation, Sel: 1},
			{Type: OpHash, Children: []*Node{
				{Type: OpSeqScan, Table: dbsys.TRegion, Sel: 0.2},
			}},
		},
	}
	custSide := &Node{
		Type:   OpHashJoin,
		Fanout: 0.2,
		Children: []*Node{
			{Type: OpSeqScan, Table: dbsys.TCustomer, Sel: 1},
			{Type: OpHash, Children: []*Node{nationRegion}},
		},
	}
	orders := &Node{
		Type:   OpHashJoin,
		Fanout: 1.5, // orders per customer in the date range
		Children: []*Node{
			custSide,
			{Type: OpHash, Children: []*Node{
				{Type: OpSeqScan, Table: dbsys.TOrders, Sel: 0.15},
			}},
		},
	}
	lineitem := &Node{
		Type:   OpHashJoin,
		Fanout: 4,
		Children: []*Node{
			orders,
			{Type: OpHash, Children: []*Node{
				{Type: OpSeqScan, Table: dbsys.TLineitem, Sel: 0.15},
			}},
		},
	}
	suppliers := &Node{
		Type:   OpHashJoin,
		Fanout: 0.04,
		Children: []*Node{
			lineitem,
			{Type: OpHash, Children: []*Node{
				{Type: OpSeqScan, Table: dbsys.TSupplier, Sel: 1},
			}},
		},
	}
	return New("Q5", &Node{
		Type: OpSort,
		Children: []*Node{{
			Type:     OpAggregate,
			Children: []*Node{suppliers},
		}},
	})
}

package plan

import (
	"math"
	"testing"
	"testing/quick"

	"diads/internal/dbsys"
)

// tpchRows supplies SF-1 cardinalities for cardinality tests.
func tpchRows(table string) int64 {
	rows := map[string]int64{
		dbsys.TPart: 200_000, dbsys.TSupplier: 10_000, dbsys.TPartsupp: 800_000,
		dbsys.TNation: 25, dbsys.TRegion: 5, dbsys.TLineitem: 6_000_000,
		dbsys.TOrders: 1_500_000, dbsys.TCustomer: 150_000,
	}
	return rows[table]
}

func unitScale(string) float64 { return 1 }

func TestQ2Cardinalities(t *testing.T) {
	p := BuildQ2(DefaultQ2Choices())
	c := Cardinality(p, tpchRows, unitScale)

	// O4: part selectivity 0.004 of 200k = 800 rows, one execution.
	if got := c.Total[4]; math.Abs(got-800) > 1e-9 {
		t.Fatalf("O4 total rows: %v", got)
	}
	// Subplan operators loop once per O4 output row.
	if got := c.Loops[22]; got != 800 {
		t.Fatalf("O22 loops: %v", got)
	}
	// O22: 4 partsupp rows per loop, 3200 total.
	if got := c.Total[22]; math.Abs(got-3200) > 1e-9 {
		t.Fatalf("O22 total rows: %v", got)
	}
	// The subplan aggregate emits one row per loop.
	if got := c.RowsPerExec[16]; got != 1 {
		t.Fatalf("O16 rows/exec: %v", got)
	}
	// Limit caps the root at 100.
	if got := c.RowsPerExec[1]; got > 100 {
		t.Fatalf("O1 should be capped by Limit: %v", got)
	}
	// Every operator has loops >= 1 and non-negative rows.
	for _, n := range p.Nodes() {
		if c.Loops[n.ID] < 1 {
			t.Errorf("O%d loops < 1: %v", n.ID, c.Loops[n.ID])
		}
		if c.Total[n.ID] < 0 {
			t.Errorf("O%d negative rows", n.ID)
		}
	}
}

func TestCardinalityScalesWithAbsGrowth(t *testing.T) {
	p := BuildQ2(DefaultQ2Choices())
	base := Cardinality(p, tpchRows, unitScale)
	grown := Cardinality(p, tpchRows, func(table string) float64 {
		if table == dbsys.TPartsupp {
			return 1.6
		}
		return 1
	})
	// AbsRows partsupp leaf (O22) grows 1.6x; nation lookup (O19) does not.
	if r := grown.Total[22] / base.Total[22]; math.Abs(r-1.6) > 1e-9 {
		t.Fatalf("O22 growth: %v", r)
	}
	if grown.Total[19] != base.Total[19] {
		t.Fatalf("O19 should not grow")
	}
}

func TestCardinalityProperties(t *testing.T) {
	// Properties over random selectivities and fanouts: rows stay
	// non-negative and finite; pass-through nodes preserve child rows;
	// scaling table rows never decreases Sel-based leaf output.
	f := func(selRaw, fanRaw float64, rows int64) bool {
		sel := math.Abs(math.Mod(selRaw, 1))
		fan := math.Abs(math.Mod(fanRaw, 8))
		if rows < 0 {
			rows = -rows
		}
		rows = rows%1_000_000 + 1
		leaf := &Node{Type: OpSeqScan, Table: "t", Sel: sel}
		join := &Node{Type: OpHashJoin, Fanout: fan, Children: []*Node{
			leaf,
			{Type: OpHash, Children: []*Node{{Type: OpSeqScan, Table: "t", Sel: 0.5}}},
		}}
		root := &Node{Type: OpSort, Children: []*Node{join}}
		p := New("prop", root)
		rowsOf := func(string) int64 { return rows }
		c := Cardinality(p, rowsOf, unitScale)
		for _, n := range p.Nodes() {
			v := c.Total[n.ID]
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		// Sort passes through the join's output.
		if c.RowsPerExec[root.ID] != c.RowsPerExec[join.ID] {
			return false
		}
		// Doubling the table never shrinks the leaf.
		c2 := Cardinality(p, func(string) int64 { return rows * 2 }, unitScale)
		return c2.Total[leaf.ID] >= c.Total[leaf.ID]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateIntoStoresEstRows(t *testing.T) {
	p := BuildQ2(DefaultQ2Choices())
	c := EstimateInto(p, tpchRows)
	for _, n := range p.Nodes() {
		if n.EstRows != c.Total[n.ID] {
			t.Fatalf("O%d EstRows %v != %v", n.ID, n.EstRows, c.Total[n.ID])
		}
	}
}

func TestLimitWithoutNCapsNothing(t *testing.T) {
	root := &Node{Type: OpLimit, Children: []*Node{
		{Type: OpSeqScan, Table: "t", Sel: 1},
	}}
	p := New("nolimit", root)
	c := Cardinality(p, func(string) int64 { return 500 }, unitScale)
	if c.RowsPerExec[1] != 500 {
		t.Fatalf("Limit without N should pass rows through: %v", c.RowsPerExec[1])
	}
}

package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Plan is a finalized operator tree with pre-order IDs assigned.
type Plan struct {
	// Query names the query this plan executes (e.g. "Q2").
	Query string
	// Root is the top operator.
	Root *Node

	nodes   []*Node     // pre-order
	parents map[int]int // node ID -> parent ID (0 for root)
}

// New finalizes a tree under root into a Plan, assigning pre-order IDs.
// At each node, regular children are numbered before attached subplans,
// which matches how EXPLAIN lists subplans after the node's inputs.
func New(query string, root *Node) *Plan {
	p := &Plan{Query: query, Root: root, parents: make(map[int]int)}
	var walk func(n *Node, parent int)
	var next int
	walk = func(n *Node, parent int) {
		next++
		n.ID = next
		p.nodes = append(p.nodes, n)
		p.parents[n.ID] = parent
		for _, c := range n.Children {
			walk(c, n.ID)
		}
		for _, s := range n.SubPlans {
			walk(s, n.ID)
		}
	}
	walk(root, 0)
	return p
}

// Nodes returns the operators in pre-order (O1 first).
func (p *Plan) Nodes() []*Node { return p.nodes }

// NumOperators returns the operator count.
func (p *Plan) NumOperators() int { return len(p.nodes) }

// Node returns the operator with the given ID.
func (p *Plan) Node(id int) (*Node, bool) {
	if id < 1 || id > len(p.nodes) {
		return nil, false
	}
	return p.nodes[id-1], true
}

// MustNode returns the operator with the given ID or panics.
func (p *Plan) MustNode(id int) *Node {
	n, ok := p.Node(id)
	if !ok {
		panic(fmt.Sprintf("plan: no operator O%d in %s", id, p.Query))
	}
	return n
}

// Leaves returns the base-data operators in pre-order.
func (p *Plan) Leaves() []*Node {
	var out []*Node
	for _, n := range p.nodes {
		if n.IsLeaf() {
			out = append(out, n)
		}
	}
	return out
}

// ParentID returns the parent operator's ID (0 for the root).
func (p *Plan) ParentID(id int) int { return p.parents[id] }

// Ancestors returns the chain of ancestor IDs from id's parent up to the
// root, in bottom-up order. Subplan operators chain through the operator
// their subplan attaches to.
func (p *Plan) Ancestors(id int) []int {
	var out []int
	for cur := p.parents[id]; cur != 0; cur = p.parents[cur] {
		out = append(out, cur)
	}
	return out
}

// LeavesOnTable returns the leaf operators reading the given table.
func (p *Plan) LeavesOnTable(table string) []*Node {
	var out []*Node
	for _, n := range p.Leaves() {
		if n.Table == table {
			out = append(out, n)
		}
	}
	return out
}

// Tables returns the distinct base tables the plan reads, sorted.
func (p *Plan) Tables() []string {
	seen := make(map[string]bool)
	for _, n := range p.Leaves() {
		seen[n.Table] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Signature returns a stable hash of the plan's structure: operator types,
// access paths, and tree shape. Two runs used the same plan iff their
// signatures match — the test Module PD starts with.
func (p *Plan) Signature() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%d:%s:%s:%s:%s;", depth, n.Type, n.Table, n.Index, n.Alias)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
		for _, s := range n.SubPlans {
			b.WriteString("sub;")
			walk(s, depth+1)
		}
	}
	walk(p.Root, 0)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}

// Render returns an EXPLAIN-style indented listing with operator numbers.
func (p *Plan) Render() string {
	var b strings.Builder
	var walk func(n *Node, depth int, prefix string)
	walk = func(n *Node, depth int, prefix string) {
		fmt.Fprintf(&b, "%-4s %s%s%s\n", n.OpName(), strings.Repeat("  ", depth), prefix, n.Label())
		for _, c := range n.Children {
			walk(c, depth+1, "")
		}
		for _, s := range n.SubPlans {
			walk(s, depth+1, "SubPlan: ")
		}
	}
	walk(p.Root, 0, "")
	return b.String()
}

// Difference describes one structural difference between two plans.
type Difference struct {
	// Kind is "access-path", "operator", or "shape".
	Kind string
	// Detail is a human-readable description.
	Detail string
}

// String implements fmt.Stringer.
func (d Difference) String() string { return d.Kind + ": " + d.Detail }

// Diff compares two plans structurally: per-table access paths and the
// multiset of operator types. It returns nil when the plans are
// structurally identical.
func Diff(a, b *Plan) []Difference {
	if a.Signature() == b.Signature() {
		return nil
	}
	var out []Difference

	accessOf := func(p *Plan) map[string]string {
		m := make(map[string]string)
		for _, n := range p.Leaves() {
			key := n.Table + aliasSuffix(n.Alias)
			desc := string(n.Type)
			if n.Index != "" {
				desc += " using " + n.Index
			}
			m[key] = desc
		}
		return m
	}
	accA, accB := accessOf(a), accessOf(b)
	keys := make(map[string]bool)
	for k := range accA {
		keys[k] = true
	}
	for k := range accB {
		keys[k] = true
	}
	sortedKeys := make([]string, 0, len(keys))
	for k := range keys {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Strings(sortedKeys)
	for _, k := range sortedKeys {
		va, vb := accA[k], accB[k]
		switch {
		case va == vb:
		case va == "":
			out = append(out, Difference{Kind: "access-path", Detail: fmt.Sprintf("%s: none -> %s", k, vb)})
		case vb == "":
			out = append(out, Difference{Kind: "access-path", Detail: fmt.Sprintf("%s: %s -> none", k, va)})
		default:
			out = append(out, Difference{Kind: "access-path", Detail: fmt.Sprintf("%s: %s -> %s", k, va, vb)})
		}
	}

	countTypes := func(p *Plan) map[OpType]int {
		m := make(map[OpType]int)
		for _, n := range p.Nodes() {
			m[n.Type]++
		}
		return m
	}
	ca, cb := countTypes(a), countTypes(b)
	for _, t := range []OpType{OpLimit, OpSort, OpHashJoin, OpMergeJoin, OpNestedLoop,
		OpHash, OpMaterialize, OpAggregate, OpSeqScan, OpIndexScan} {
		if ca[t] != cb[t] {
			out = append(out, Difference{Kind: "operator",
				Detail: fmt.Sprintf("%s count %d -> %d", t, ca[t], cb[t])})
		}
	}
	if len(out) == 0 {
		out = append(out, Difference{Kind: "shape", Detail: "same operators arranged differently"})
	}
	return out
}

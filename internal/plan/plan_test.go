package plan

import (
	"sort"
	"strings"
	"testing"

	"diads/internal/dbsys"
)

func TestQ2MatchesFigure1Shape(t *testing.T) {
	p := BuildQ2(DefaultQ2Choices())
	if got := p.NumOperators(); got != 25 {
		t.Fatalf("Figure 1 plan has 25 operators, got %d:\n%s", got, p.Render())
	}
	leaves := p.Leaves()
	if len(leaves) != 9 {
		t.Fatalf("Figure 1 plan has 9 leaf operators, got %d:\n%s", len(leaves), p.Render())
	}
	var leafIDs []int
	for _, l := range leaves {
		leafIDs = append(leafIDs, l.ID)
	}
	wantLeaves := []int{4, 8, 10, 13, 15, 19, 22, 23, 25}
	for i, want := range wantLeaves {
		if leafIDs[i] != want {
			t.Fatalf("leaf IDs: got %v, want %v\n%s", leafIDs, wantLeaves, p.Render())
		}
	}
	// O8 and O22 are the partsupp (volume V1) leaves.
	psLeaves := p.LeavesOnTable(dbsys.TPartsupp)
	if len(psLeaves) != 2 || psLeaves[0].ID != 8 || psLeaves[1].ID != 22 {
		t.Fatalf("partsupp leaves: got %v", ids(psLeaves))
	}
	// O23 is an Index Scan on supplier, the paper's worked example.
	o23 := p.MustNode(23)
	if o23.Type != OpIndexScan || o23.Table != dbsys.TSupplier {
		t.Fatalf("O23: got %s on %s", o23.Type, o23.Table)
	}
	// O4 is the part index scan.
	o4 := p.MustNode(4)
	if o4.Type != OpIndexScan || o4.Table != dbsys.TPart {
		t.Fatalf("O4: got %s on %s", o4.Type, o4.Table)
	}
	// The root is a Limit; O2 a Sort; O3 the main hash join.
	if p.MustNode(1).Type != OpLimit || p.MustNode(2).Type != OpSort || p.MustNode(3).Type != OpHashJoin {
		t.Fatalf("top operators wrong:\n%s", p.Render())
	}
	// O16 is the subplan aggregate.
	if p.MustNode(16).Type != OpAggregate {
		t.Fatalf("O16 should be the subplan Aggregate, got %s", p.MustNode(16).Type)
	}
}

func ids(ns []*Node) []int {
	var out []int
	for _, n := range ns {
		out = append(out, n.ID)
	}
	return out
}

func TestQ2AncestorChains(t *testing.T) {
	// Under V1 contention the inflating ancestors of O8 and O22 must be
	// exactly the paper's eight intermediates {O2,O3,O6,O7} and
	// {O17,O18,O20,O21} once blocking-build nodes (which record exclusive
	// time) and the root are excluded.
	p := BuildQ2(DefaultQ2Choices())
	inflating := func(leaf int) []int {
		var out []int
		for _, a := range p.Ancestors(leaf) {
			n := p.MustNode(a)
			if a == p.Root.ID || n.Type.IsBlockingBuild() {
				continue
			}
			out = append(out, a)
		}
		sort.Ints(out)
		return out
	}
	gotO8 := inflating(8)
	wantO8 := []int{2, 3, 6, 7}
	if !equalInts(gotO8, wantO8) {
		t.Fatalf("inflating ancestors of O8: got %v, want %v", gotO8, wantO8)
	}
	gotO22 := inflating(22)
	wantO22 := []int{2, 3, 17, 18, 20, 21}
	if !equalInts(gotO22, wantO22) {
		t.Fatalf("inflating ancestors of O22: got %v, want %v", gotO22, wantO22)
	}
	// Union of both chains = the paper's eight intermediates.
	union := map[int]bool{}
	for _, x := range append(gotO8, gotO22...) {
		union[x] = true
	}
	var got []int
	for x := range union {
		got = append(got, x)
	}
	sort.Ints(got)
	if !equalInts(got, []int{2, 3, 6, 7, 17, 18, 20, 21}) {
		t.Fatalf("union of inflating ancestors: %v", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPreOrderNumbering(t *testing.T) {
	p := BuildQ2(DefaultQ2Choices())
	for i, n := range p.Nodes() {
		if n.ID != i+1 {
			t.Fatalf("pre-order IDs must be dense: node %d has ID %d", i, n.ID)
		}
	}
	// Parent pointers are consistent: every non-root's parent has a
	// smaller pre-order ID.
	for _, n := range p.Nodes() {
		if n.ID == 1 {
			if p.ParentID(1) != 0 {
				t.Fatalf("root parent should be 0")
			}
			continue
		}
		if pid := p.ParentID(n.ID); pid <= 0 || pid >= n.ID {
			t.Fatalf("parent of O%d is O%d; pre-order requires parent < child", n.ID, pid)
		}
	}
}

func TestAncestorsThroughSubPlan(t *testing.T) {
	p := BuildQ2(DefaultQ2Choices())
	anc := p.Ancestors(22)
	// O22 chains through O21, O20, O18, O17, O16, then the subplan's
	// attachment point O3, then O2, O1.
	want := []int{21, 20, 18, 17, 16, 3, 2, 1}
	if !equalInts(anc, want) {
		t.Fatalf("Ancestors(22): got %v, want %v", anc, want)
	}
}

func TestSignatureStability(t *testing.T) {
	a := BuildQ2(DefaultQ2Choices())
	b := BuildQ2(DefaultQ2Choices())
	if a.Signature() != b.Signature() {
		t.Fatalf("identical plans must share a signature")
	}
	ch := DefaultQ2Choices()
	ch.PartsuppAccess = AccessSpec{Type: OpSeqScan}
	ch.SubPartsuppAccess = AccessSpec{Type: OpSeqScan}
	c := BuildQ2(ch)
	if a.Signature() == c.Signature() {
		t.Fatalf("different access paths must change the signature")
	}
}

func TestDiffReportsAccessPathChange(t *testing.T) {
	a := BuildQ2(DefaultQ2Choices())
	ch := DefaultQ2Choices()
	ch.PartsuppAccess = AccessSpec{Type: OpSeqScan}
	ch.SubPartsuppAccess = AccessSpec{Type: OpSeqScan}
	b := BuildQ2(ch)
	diffs := Diff(a, b)
	if diffs == nil {
		t.Fatalf("plans differ; Diff returned nil")
	}
	var sawPartsupp bool
	for _, d := range diffs {
		if d.Kind == "access-path" && strings.Contains(d.Detail, dbsys.TPartsupp) {
			sawPartsupp = true
		}
	}
	if !sawPartsupp {
		t.Fatalf("diff should mention the partsupp access change: %v", diffs)
	}
	if Diff(a, BuildQ2(DefaultQ2Choices())) != nil {
		t.Fatalf("identical plans should diff to nil")
	}
}

func TestDiffReportsJoinStrategyChange(t *testing.T) {
	a := BuildQ2(DefaultQ2Choices())
	ch := DefaultQ2Choices()
	ch.MainJoin = OpNestedLoop
	b := BuildQ2(ch)
	diffs := Diff(a, b)
	var sawOp bool
	for _, d := range diffs {
		if d.Kind == "operator" && (strings.Contains(d.Detail, string(OpHashJoin)) ||
			strings.Contains(d.Detail, string(OpNestedLoop))) {
			sawOp = true
		}
	}
	if !sawOp {
		t.Fatalf("diff should mention the join strategy change: %v", diffs)
	}
}

func TestRenderContainsOperatorNumbers(t *testing.T) {
	p := BuildQ2(DefaultQ2Choices())
	r := p.Render()
	for _, want := range []string{"O1 ", "O25", "SubPlan:", "Index Scan using " + dbsys.IdxPartsuppPart} {
		if !strings.Contains(r, want) {
			t.Fatalf("render missing %q:\n%s", want, r)
		}
	}
}

func TestTablesAndLeafHelpers(t *testing.T) {
	p := BuildQ2(DefaultQ2Choices())
	tables := p.Tables()
	want := []string{dbsys.TNation, dbsys.TPart, dbsys.TPartsupp, dbsys.TRegion, dbsys.TSupplier}
	if !equalStrings(tables, want) {
		t.Fatalf("Tables: got %v, want %v", tables, want)
	}
	if _, ok := p.Node(0); ok {
		t.Fatalf("Node(0) should not exist")
	}
	if _, ok := p.Node(26); ok {
		t.Fatalf("Node(26) should not exist")
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOtherQueryBuilders(t *testing.T) {
	for _, tc := range []struct {
		p      *Plan
		minOps int
	}{
		{BuildQ6(), 2},
		{BuildQ14(), 5},
		{BuildQ5(), 12},
	} {
		if tc.p.NumOperators() < tc.minOps {
			t.Errorf("%s: want >= %d ops, got %d", tc.p.Query, tc.minOps, tc.p.NumOperators())
		}
		if len(tc.p.Leaves()) == 0 {
			t.Errorf("%s has no leaves", tc.p.Query)
		}
		if tc.p.Signature() == "" {
			t.Errorf("%s has empty signature", tc.p.Query)
		}
	}
}

func TestBlockingBuildClassification(t *testing.T) {
	for _, typ := range []OpType{OpHash, OpMaterialize, OpAggregate} {
		if !typ.IsBlockingBuild() {
			t.Errorf("%s should be blocking-build", typ)
		}
	}
	for _, typ := range []OpType{OpSort, OpHashJoin, OpMergeJoin, OpNestedLoop, OpLimit, OpSeqScan, OpIndexScan} {
		if typ.IsBlockingBuild() {
			t.Errorf("%s should not be blocking-build", typ)
		}
	}
}

package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(100)
	t1 := t0.Add(50 * Second)
	if t1 != Time(150) {
		t.Fatalf("Add: got %v, want 150", t1)
	}
	if d := t1.Sub(t0); d != 50 {
		t.Fatalf("Sub: got %v, want 50", d)
	}
	if !t0.Before(t1) || t0.After(t1) {
		t.Fatalf("ordering wrong for %v vs %v", t0, t1)
	}
}

func TestClockRendering(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "d0 00:00:00"},
		{Time(Hour), "d0 01:00:00"},
		{Time(Day) + Time(90), "d1 00:01:30"},
		{Time(3*Day) + Time(13*Hour) + Time(62), "d3 13:01:02"},
	}
	for _, c := range cases {
		if got := c.t.Clock(); got != c.want {
			t.Errorf("Clock(%v): got %q, want %q", float64(c.t), got, c.want)
		}
	}
}

func TestDurationString(t *testing.T) {
	if s := (90 * Minute).String(); s != "1.50h" {
		t.Errorf("90m: got %q", s)
	}
	if s := (90 * Second).String(); s != "1.50m" {
		t.Errorf("90s: got %q", s)
	}
	if s := (Duration(0.5)).String(); s != "0.500s" {
		t.Errorf("0.5s: got %q", s)
	}
}

func TestIntervalOverlap(t *testing.T) {
	a := NewInterval(0, 100)
	b := NewInterval(50, 150)
	if got := a.Overlap(b); got != 50 {
		t.Fatalf("overlap: got %v, want 50", got)
	}
	if got := b.Overlap(a); got != 50 {
		t.Fatalf("overlap not symmetric: got %v", got)
	}
	c := NewInterval(100, 200)
	if a.Overlaps(c) {
		t.Fatalf("half-open intervals should not overlap at shared endpoint")
	}
	if !a.Contains(0) || a.Contains(100) {
		t.Fatalf("Contains should be half-open")
	}
}

func TestIntervalPanicsOnInversion(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewInterval(10, 5) should panic")
		}
	}()
	NewInterval(10, 5)
}

func TestOverlapProperties(t *testing.T) {
	// Overlap is symmetric and never exceeds either interval's length.
	f := func(a0, a1, b0, b1 float64) bool {
		if math.IsNaN(a0) || math.IsNaN(a1) || math.IsNaN(b0) || math.IsNaN(b1) {
			return true
		}
		a := NewInterval(Time(math.Min(a0, a1)), Time(math.Max(a0, a1)))
		b := NewInterval(Time(math.Min(b0, b1)), Time(math.Max(b0, b1)))
		ov := a.Overlap(b)
		return ov == b.Overlap(a) && ov <= a.Length() && ov <= b.Length() && ov >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42, "disk-1")
	b := NewRand(42, "disk-1")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed+label must produce identical streams")
		}
	}
	c := NewRand(42, "disk-2")
	d := NewRand(43, "disk-1")
	same := true
	for i := 0; i < 10; i++ {
		x := NewRand(42, "disk-1")
		_ = x
		if c.Float64() != d.Float64() {
			same = false
		}
	}
	if same {
		t.Fatalf("different labels/seeds should diverge")
	}
}

func TestLogNormalFactorMedian(t *testing.T) {
	r := NewRand(7, "median")
	n := 20001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormalFactor(0.3)
	}
	// Median of a log-normal with mu=0 is 1; check via counting.
	below := 0
	for _, v := range vals {
		if v < 1 {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("median check failed: %.3f of samples below 1", frac)
	}
}

func TestGaussianMoments(t *testing.T) {
	r := NewRand(11, "gauss")
	var sum, sum2 float64
	n := 50000
	for i := 0; i < n; i++ {
		v := r.Gaussian(10, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("mean: got %.3f, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Fatalf("stddev: got %.3f, want ~2", math.Sqrt(variance))
	}
}

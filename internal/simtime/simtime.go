// Package simtime provides the simulated time base and deterministic
// randomness used by every substrate in the DIADS reproduction.
//
// All simulation timestamps are expressed as seconds since the simulation
// epoch (Time). Using a plain float64 keeps the statistical machinery
// (kernel density estimation, interval overlap arithmetic) free of
// conversions while still allowing human-readable rendering through
// Time.Clock.
package simtime

import (
	"fmt"
	"math"
)

// Time is a simulation timestamp in seconds since the simulation epoch.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration float64

// Common durations.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 24 * Hour
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Clock renders t as a day/hh:mm:ss wall-clock label, with day 0 starting
// at the simulation epoch. It is used by the console screens.
func (t Time) Clock() string {
	s := float64(t)
	neg := ""
	if s < 0 {
		neg = "-"
		s = -s
	}
	day := int(s / float64(Day))
	s -= float64(day) * float64(Day)
	h := int(s / 3600)
	s -= float64(h) * 3600
	m := int(s / 60)
	s -= float64(m) * 60
	return fmt.Sprintf("%sd%d %02d:%02d:%02.0f", neg, day, h, m, s)
}

// String implements fmt.Stringer.
func (t Time) String() string { return t.Clock() }

// Seconds returns d as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Minutes returns d as a float64 number of minutes.
func (d Duration) Minutes() float64 { return float64(d) / 60 }

// String implements fmt.Stringer.
func (d Duration) String() string {
	s := float64(d)
	switch {
	case math.Abs(s) >= float64(Hour):
		return fmt.Sprintf("%.2fh", s/float64(Hour))
	case math.Abs(s) >= float64(Minute):
		return fmt.Sprintf("%.2fm", s/float64(Minute))
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// Interval is a half-open span [Start, End) of simulated time.
type Interval struct {
	Start Time
	End   Time
}

// NewInterval returns the interval [start, end); it panics if end < start,
// which always indicates a programming error in the simulator.
func NewInterval(start, end Time) Interval {
	if end < start {
		panic(fmt.Sprintf("simtime: interval end %v before start %v", end, start))
	}
	return Interval{Start: start, End: end}
}

// Length returns the duration of the interval.
func (iv Interval) Length() Duration { return iv.End.Sub(iv.Start) }

// Contains reports whether t lies within [Start, End).
func (iv Interval) Contains(t Time) bool { return t >= iv.Start && t < iv.End }

// Overlap returns the length of the intersection of iv and other.
func (iv Interval) Overlap(other Interval) Duration {
	lo := math.Max(float64(iv.Start), float64(other.Start))
	hi := math.Min(float64(iv.End), float64(other.End))
	if hi <= lo {
		return 0
	}
	return Duration(hi - lo)
}

// Overlaps reports whether the two intervals intersect.
func (iv Interval) Overlaps(other Interval) bool { return iv.Overlap(other) > 0 }

// String implements fmt.Stringer.
func (iv Interval) String() string {
	return fmt.Sprintf("[%s, %s)", iv.Start.Clock(), iv.End.Clock())
}

package simtime

import (
	"math"
	"math/rand"
)

// Rand is a deterministic random source. Every stochastic component of the
// simulation derives its own Rand from a scenario seed plus a stable
// component label, so adding a component never perturbs the random streams
// of existing ones.
type Rand struct {
	rng *rand.Rand
}

// NewRand returns a Rand seeded from seed and a stable component label.
func NewRand(seed int64, label string) *Rand {
	h := uint64(seed)
	for _, c := range label {
		// FNV-1a style mixing keeps streams independent across labels.
		h ^= uint64(c)
		h *= 1099511628211
	}
	return &Rand{rng: rand.New(rand.NewSource(int64(h)))}
}

// Float64 returns a uniform sample in [0, 1).
func (r *Rand) Float64() float64 { return r.rng.Float64() }

// NormFloat64 returns a standard normal sample.
func (r *Rand) NormFloat64() float64 { return r.rng.NormFloat64() }

// Intn returns a uniform sample in [0, n).
func (r *Rand) Intn(n int) int { return r.rng.Intn(n) }

// Gaussian returns a normal sample with the given mean and standard
// deviation.
func (r *Rand) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.rng.NormFloat64()
}

// LogNormalFactor returns a multiplicative noise factor with median 1 whose
// log is normal with standard deviation sigma. It models the heavy-tailed
// jitter of real response-time measurements.
func (r *Rand) LogNormalFactor(sigma float64) float64 {
	return math.Exp(sigma * r.rng.NormFloat64())
}

// Jitter returns v scaled by a log-normal factor with the given sigma.
func (r *Rand) Jitter(v, sigma float64) float64 {
	return v * r.LogNormalFactor(sigma)
}

// Package faults is the fault injector of the reproduction, standing in
// for the paper's testbed fault injector (Section 6, footnote 1): it can
// inject SAN misconfigurations, volume and server contention, RAID
// rebuilds, disk failures, changes in data properties, table-locking
// problems, and plan-changing schema/configuration events. Faults are
// applied to a testbed before Simulate and record the configuration
// events a real environment would log.
package faults

import (
	"fmt"

	"diads/internal/dbsys"
	"diads/internal/sanperf"
	"diads/internal/simtime"
	"diads/internal/symptoms"
	"diads/internal/testbed"
	"diads/internal/topology"
	"diads/internal/workload"
)

// Fault is one injectable problem. GroundTruth names the root cause a
// correct diagnosis should identify, as a symptoms-database cause kind
// plus subject.
type Fault interface {
	Name() string
	Apply(tb *testbed.Testbed) error
	GroundTruth() (kind, subject string)
}

// SANMisconfiguration reproduces scenario 1: a new volume V' is carved
// from the pool backing one of the query's volumes and zoned/LUN-mapped
// to another host, whose workload then contends for the same physical
// disks.
type SANMisconfiguration struct {
	// At is when the misconfiguration happens.
	At simtime.Time
	// Until bounds the contending workload (use the simulation end).
	Until simtime.Time
	// Pool is the victim pool (P1 in the paper).
	Pool topology.ID
	// NewVolume is the created volume's ID (V').
	NewVolume topology.ID
	// Host is the server the volume is mapped to.
	Host topology.ID
	// ReadIOPS and WriteIOPS describe the contending workload.
	ReadIOPS, WriteIOPS float64
}

// Name implements Fault.
func (f *SANMisconfiguration) Name() string { return "san-misconfiguration" }

// GroundTruth implements Fault: the root cause is the misconfiguration's
// contention on the volume sharing the pool — the diagnosis subject is
// the victim volume, resolved at Apply time.
func (f *SANMisconfiguration) GroundTruth() (string, string) {
	return symptoms.CauseSANMisconfig, "" // subject resolved per victim volume
}

// Apply implements Fault.
func (f *SANMisconfiguration) Apply(tb *testbed.Testbed) error {
	if err := tb.Cfg.AddVolume(f.NewVolume, f.Pool, "V'", 80); err != nil {
		return fmt.Errorf("faults: creating %s: %w", f.NewVolume, err)
	}
	if err := tb.Cfg.MapLUN(f.NewVolume, f.Host); err != nil {
		return fmt.Errorf("faults: mapping %s: %w", f.NewVolume, err)
	}
	log := &tb.Cfg.Log
	log.Record(topology.Event{T: f.At, Kind: topology.EvVolumeCreated, Subject: f.NewVolume,
		Detail: fmt.Sprintf("volume V' created in %s", f.Pool)})
	log.Record(topology.Event{T: f.At.Add(30 * simtime.Second), Kind: topology.EvZoneCreated, Subject: f.NewVolume,
		Detail: fmt.Sprintf("zoning for host %s", f.Host)})
	log.Record(topology.Event{T: f.At.Add(time1m()), Kind: topology.EvLUNMapped, Subject: f.NewVolume,
		Detail: fmt.Sprintf("LUN mapped to host %s", f.Host)})
	log.Record(topology.Event{T: f.At.Add(2 * time1m()), Kind: topology.EvWorkloadStarted, Subject: f.NewVolume,
		Detail: "external workload started on V'"})
	tb.SAN.AddLoad(sanperf.Load{
		Volume:    f.NewVolume,
		Iv:        simtime.NewInterval(f.At.Add(2*time1m()), f.Until),
		ReadIOPS:  f.ReadIOPS,
		WriteIOPS: f.WriteIOPS,
		SeqFrac:   0.1,
		Source:    "wl-vprime",
	})
	return nil
}

func time1m() simtime.Duration { return simtime.Minute }

// ExternalVolumeLoad reproduces scenario 2's external workloads: extra
// I/O against an existing volume, optionally bursty, with no
// configuration change.
type ExternalVolumeLoad struct {
	LoadName  string
	Volume    topology.ID
	Window    simtime.Interval
	ReadIOPS  float64
	WriteIOPS float64
	// DutyCycle < 1 with a Period makes the load bursty.
	DutyCycle float64
	Period    simtime.Duration
}

// Name implements Fault.
func (f *ExternalVolumeLoad) Name() string { return "external-volume-load" }

// GroundTruth implements Fault.
func (f *ExternalVolumeLoad) GroundTruth() (string, string) {
	return symptoms.CauseExternalLoad, string(f.Volume)
}

// Apply implements Fault.
func (f *ExternalVolumeLoad) Apply(tb *testbed.Testbed) error {
	el := workload.ExternalLoad{
		Name:      f.LoadName,
		Volume:    f.Volume,
		Window:    f.Window,
		ReadIOPS:  f.ReadIOPS,
		WriteIOPS: f.WriteIOPS,
		SeqFrac:   0.2,
		DutyCycle: f.DutyCycle,
		Period:    f.Period,
	}
	for _, seg := range el.Segments() {
		tb.SAN.AddLoad(seg)
	}
	tb.Cfg.Log.Record(topology.Event{
		T: f.Window.Start, Kind: topology.EvWorkloadStarted, Subject: f.Volume,
		Detail: fmt.Sprintf("external workload %s", f.LoadName),
	})
	return nil
}

// DataPropertyChange reproduces scenario 3: a bulk DML shifts a table's
// cardinality; the effect propagates to the SAN as extra I/O.
type DataPropertyChange struct {
	At     simtime.Time
	Table  string
	Factor float64
}

// Name implements Fault.
func (f *DataPropertyChange) Name() string { return "data-property-change" }

// GroundTruth implements Fault.
func (f *DataPropertyChange) GroundTruth() (string, string) {
	return symptoms.CauseDataProperty, f.Table
}

// Apply implements Fault.
func (f *DataPropertyChange) Apply(tb *testbed.Testbed) error {
	tb.DMLs = append(tb.DMLs, workload.DMLBatch{T: f.At, Table: f.Table, Factor: f.Factor})
	return nil
}

// TableLockContention reproduces scenario 5's database-side problem: an
// external transaction holds exclusive table locks during query runs.
type TableLockContention struct {
	Table  string
	Holds  []simtime.Interval
	Holder string
}

// Name implements Fault.
func (f *TableLockContention) Name() string { return "table-lock-contention" }

// GroundTruth implements Fault.
func (f *TableLockContention) GroundTruth() (string, string) {
	return symptoms.CauseLockContention, f.Table
}

// Apply implements Fault.
func (f *TableLockContention) Apply(tb *testbed.Testbed) error {
	if len(f.Holds) == 0 {
		return fmt.Errorf("faults: lock contention needs at least one hold")
	}
	for _, iv := range f.Holds {
		tb.Locks.AddHold(dbsys.Hold{
			Table: f.Table, Iv: iv, Mode: dbsys.LockExclusive, Holder: f.Holder,
		})
	}
	return nil
}

// RAIDRebuild steals disk bandwidth from every disk of a pool.
type RAIDRebuild struct {
	Pool      topology.ID
	Window    simtime.Interval
	Intensity float64 // extra utilization per disk, e.g. 0.5
}

// Name implements Fault.
func (f *RAIDRebuild) Name() string { return "raid-rebuild" }

// GroundTruth implements Fault.
func (f *RAIDRebuild) GroundTruth() (string, string) {
	return symptoms.CauseRAIDRebuild, string(f.Pool)
}

// Apply implements Fault.
func (f *RAIDRebuild) Apply(tb *testbed.Testbed) error {
	disks := tb.Cfg.ChildrenOfKind(f.Pool, topology.KindDisk)
	if len(disks) == 0 {
		return fmt.Errorf("faults: pool %s has no disks", f.Pool)
	}
	for _, d := range disks {
		tb.SAN.AddDiskUtilization(d, f.Window, f.Intensity, "raid-rebuild")
	}
	tb.Cfg.Log.Record(topology.Event{T: f.Window.Start, Kind: topology.EvRAIDRebuildStart,
		Subject: f.Pool, Detail: "RAID rebuild started"})
	tb.Cfg.Log.Record(topology.Event{T: f.Window.End, Kind: topology.EvRAIDRebuildDone,
		Subject: f.Pool, Detail: "RAID rebuild completed"})
	return nil
}

// DiskFailure takes a disk out of service; the survivors absorb its load
// while a rebuild adds background traffic.
type DiskFailure struct {
	Disk   topology.ID
	Window simtime.Interval
	// RebuildIntensity is the extra utilization on surviving disks.
	RebuildIntensity float64
}

// Name implements Fault.
func (f *DiskFailure) Name() string { return "disk-failure" }

// GroundTruth implements Fault.
func (f *DiskFailure) GroundTruth() (string, string) {
	return symptoms.CauseDiskFailure, "" // subject is the pool, resolved at Apply
}

// Apply implements Fault.
func (f *DiskFailure) Apply(tb *testbed.Testbed) error {
	pool := tb.Cfg.PoolOf(f.Disk)
	if pool == "" {
		return fmt.Errorf("faults: disk %s has no pool", f.Disk)
	}
	tb.SAN.FailDisk(f.Disk, f.Window, "disk-failure")
	for _, d := range tb.Cfg.ChildrenOfKind(pool, topology.KindDisk) {
		if d == f.Disk {
			continue
		}
		tb.SAN.AddDiskUtilization(d, f.Window, f.RebuildIntensity, "rebuild-after-failure")
	}
	tb.Cfg.Log.Record(topology.Event{T: f.Window.Start, Kind: topology.EvDiskFailed,
		Subject: f.Disk, Detail: "disk failed"})
	tb.Cfg.Log.Record(topology.Event{T: f.Window.Start.Add(time1m()), Kind: topology.EvRAIDRebuildStart,
		Subject: pool, Detail: "rebuild after disk failure"})
	return nil
}

// CPUSaturation loads the database server's CPU.
type CPUSaturation struct {
	Server topology.ID
	Window simtime.Interval
	Load   float64 // utilization fraction, e.g. 0.7
}

// Name implements Fault.
func (f *CPUSaturation) Name() string { return "cpu-saturation" }

// GroundTruth implements Fault.
func (f *CPUSaturation) GroundTruth() (string, string) {
	return symptoms.CauseCPUSaturation, string(f.Server)
}

// Apply implements Fault.
func (f *CPUSaturation) Apply(tb *testbed.Testbed) error {
	tb.CPULoad.Add("cpu", f.Window, f.Load, "cpu-hog")
	return nil
}

// IndexDrop removes an index mid-simulation, causing a plan regression
// Module PD should attribute.
type IndexDrop struct {
	At    simtime.Time
	Index string
}

// Name implements Fault.
func (f *IndexDrop) Name() string { return "index-drop" }

// GroundTruth implements Fault.
func (f *IndexDrop) GroundTruth() (string, string) {
	return symptoms.CausePlanRegression, f.Index
}

// Apply implements Fault.
func (f *IndexDrop) Apply(tb *testbed.Testbed) error {
	tb.IndexDrops = append(tb.IndexDrops, workload.ScheduledIndexDrop{T: f.At, Index: f.Index})
	return nil
}

// ParamChange alters a configuration parameter mid-simulation.
type ParamChange struct {
	At    simtime.Time
	Param string
	Value float64
}

// Name implements Fault.
func (f *ParamChange) Name() string { return "param-change" }

// GroundTruth implements Fault.
func (f *ParamChange) GroundTruth() (string, string) {
	return symptoms.CausePlanRegression, f.Param
}

// Apply implements Fault.
func (f *ParamChange) Apply(tb *testbed.Testbed) error {
	tb.ParamChanges = append(tb.ParamChanges, workload.ScheduledParamChange{
		T: f.At, Param: f.Param, Value: f.Value,
	})
	return nil
}

// Inject applies a sequence of faults to the testbed.
func Inject(tb *testbed.Testbed, fs ...Fault) error {
	for _, f := range fs {
		if err := f.Apply(tb); err != nil {
			return fmt.Errorf("faults: applying %s: %w", f.Name(), err)
		}
	}
	return nil
}

package faults

import (
	"testing"

	"diads/internal/dbsys"
	"diads/internal/simtime"
	"diads/internal/testbed"
	"diads/internal/topology"
	"diads/internal/workload"
)

func newTB(t *testing.T, seed int64) *testbed.Testbed {
	t.Helper()
	tb, err := testbed.NewFigure1(testbed.DefaultConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	tb.Schedules = []workload.QuerySchedule{
		{Query: "Q2", Start: simtime.Time(10 * simtime.Minute), Period: 30 * simtime.Minute, Count: 4},
	}
	horizon := simtime.Time(10*simtime.Minute) + simtime.Time(4*30*simtime.Minute)
	for i := range tb.Loads {
		tb.Loads[i].Window = simtime.NewInterval(0, horizon)
	}
	return tb
}

func TestSANMisconfigurationCreatesVolumeAndEvents(t *testing.T) {
	tb := newTB(t, 1)
	f := &SANMisconfiguration{
		At: 1000, Until: 100000, Pool: testbed.PoolP1,
		NewVolume: "vol-Vp", Host: testbed.ServerApp1,
		ReadIOPS: 300, WriteIOPS: 100,
	}
	if err := Inject(tb, f); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Cfg.Get("vol-Vp"); !ok {
		t.Fatalf("V' not created")
	}
	if !tb.Cfg.LUNVisible("vol-Vp", testbed.ServerApp1) {
		t.Fatalf("V' not mapped")
	}
	for _, kind := range []topology.EventKind{
		topology.EvVolumeCreated, topology.EvZoneCreated,
		topology.EvLUNMapped, topology.EvWorkloadStarted,
	} {
		if len(tb.Cfg.Log.OfKind(kind)) != 1 {
			t.Errorf("missing %s event", kind)
		}
	}
	if got := tb.SAN.VolumeReadIOPS("vol-Vp", 2000); got != 300 {
		t.Fatalf("V' load not applied: %v", got)
	}
	// Idempotence violation is an error: applying twice recreates V'.
	if err := f.Apply(tb); err == nil {
		t.Fatalf("double apply should fail on duplicate volume")
	}
}

func TestExternalVolumeLoadBursts(t *testing.T) {
	tb := newTB(t, 2)
	f := &ExternalVolumeLoad{
		LoadName: "wl", Volume: testbed.VolV4,
		Window:   simtime.NewInterval(0, 1000),
		ReadIOPS: 100, DutyCycle: 0.5, Period: 200,
	}
	if err := Inject(tb, f); err != nil {
		t.Fatal(err)
	}
	if got := tb.SAN.VolumeReadIOPS(testbed.VolV4, 50); got != 100 {
		t.Fatalf("burst on-phase: %v", got)
	}
	if got := tb.SAN.VolumeReadIOPS(testbed.VolV4, 150); got != 0 {
		t.Fatalf("burst off-phase: %v", got)
	}
	kind, subject := f.GroundTruth()
	if kind == "" || subject != string(testbed.VolV4) {
		t.Fatalf("ground truth: %s %s", kind, subject)
	}
}

func TestDataPropertyChangeSchedulesDML(t *testing.T) {
	tb := newTB(t, 3)
	f := &DataPropertyChange{At: 500, Table: dbsys.TPartsupp, Factor: 1.5}
	if err := Inject(tb, f); err != nil {
		t.Fatal(err)
	}
	if len(tb.DMLs) != 1 || tb.DMLs[0].Factor != 1.5 {
		t.Fatalf("DML not scheduled: %+v", tb.DMLs)
	}
}

func TestTableLockContentionRequiresHolds(t *testing.T) {
	tb := newTB(t, 4)
	if err := (&TableLockContention{Table: dbsys.TPartsupp}).Apply(tb); err == nil {
		t.Fatalf("no holds should error")
	}
	f := &TableLockContention{
		Table: dbsys.TPartsupp,
		Holds: []simtime.Interval{simtime.NewInterval(100, 200)},
	}
	if err := Inject(tb, f); err != nil {
		t.Fatal(err)
	}
	if w := tb.Locks.WaitTime(dbsys.TPartsupp, 150); w != 50 {
		t.Fatalf("lock wait: %v", w)
	}
}

func TestRAIDRebuildLoadsAllPoolDisks(t *testing.T) {
	tb := newTB(t, 5)
	f := &RAIDRebuild{Pool: testbed.PoolP1, Window: simtime.NewInterval(0, 100), Intensity: 0.4}
	if err := Inject(tb, f); err != nil {
		t.Fatal(err)
	}
	for _, d := range tb.Cfg.ChildrenOfKind(testbed.PoolP1, topology.KindDisk) {
		if u := tb.SAN.DiskUtilization(d, 50); u < 0.4 {
			t.Errorf("disk %s rebuild load missing: %v", d, u)
		}
	}
	if len(tb.Cfg.Log.OfKind(topology.EvRAIDRebuildStart)) != 1 ||
		len(tb.Cfg.Log.OfKind(topology.EvRAIDRebuildDone)) != 1 {
		t.Fatalf("rebuild events missing")
	}
	if err := (&RAIDRebuild{Pool: "no-such-pool", Window: simtime.NewInterval(0, 1)}).Apply(tb); err == nil {
		t.Fatalf("unknown pool should error")
	}
}

func TestDiskFailureShiftsLoadAndLogs(t *testing.T) {
	tb := newTB(t, 6)
	f := &DiskFailure{Disk: "disk-2", Window: simtime.NewInterval(100, 200), RebuildIntensity: 0.3}
	if err := Inject(tb, f); err != nil {
		t.Fatal(err)
	}
	if u := tb.SAN.DiskUtilization("disk-2", 150); u != 1 {
		t.Fatalf("failed disk should read saturated: %v", u)
	}
	if u := tb.SAN.DiskUtilization("disk-1", 150); u < 0.3 {
		t.Fatalf("survivor should carry rebuild load: %v", u)
	}
	if len(tb.Cfg.Log.OfKind(topology.EvDiskFailed)) != 1 {
		t.Fatalf("DiskFailed event missing")
	}
	if err := (&DiskFailure{Disk: "no-such-disk", Window: simtime.NewInterval(0, 1)}).Apply(tb); err == nil {
		t.Fatalf("unknown disk should error")
	}
}

func TestCPUSaturationAndScheduledChanges(t *testing.T) {
	tb := newTB(t, 7)
	err := Inject(tb,
		&CPUSaturation{Server: testbed.ServerDB, Window: simtime.NewInterval(0, 100), Load: 0.7},
		&IndexDrop{At: 50, Index: dbsys.IdxPartsuppPart},
		&ParamChange{At: 60, Param: dbsys.ParamRandomPageCost, Value: 40},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.CPULoad.At("cpu", 50); got != 0.7 {
		t.Fatalf("cpu load: %v", got)
	}
	if len(tb.IndexDrops) != 1 || len(tb.ParamChanges) != 1 {
		t.Fatalf("scheduled changes missing")
	}
}

func TestGroundTruthsNamedForAllFaults(t *testing.T) {
	fs := []Fault{
		&SANMisconfiguration{}, &ExternalVolumeLoad{}, &DataPropertyChange{},
		&TableLockContention{}, &RAIDRebuild{}, &DiskFailure{},
		&CPUSaturation{}, &IndexDrop{}, &ParamChange{},
	}
	for _, f := range fs {
		kind, _ := f.GroundTruth()
		if kind == "" {
			t.Errorf("%s has no ground-truth kind", f.Name())
		}
		if f.Name() == "" {
			t.Errorf("%T has no name", f)
		}
	}
}

package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// fixtureExports builds (once per test binary) the import-path →
// export-data index the fixture loader resolves diads and stdlib
// imports from. Fixtures exercise real module packages (simtime,
// metrics, telemetry), so the index covers the whole module plus
// dependencies.
var fixtureExports = sync.OnceValues(func() (map[string]string, error) {
	// The diads/... pattern resolves from any directory inside the
	// module (tests run with cwd = this package's directory).
	cmd := exec.Command("go", "list", "-export", "-deps",
		"-json=ImportPath,Export", "diads/...")
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export ./...: %v", err)
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
})

// loadFixture type-checks testdata/src/<name> as a package under the
// diads module path so errdiscard treats fixture helpers as module
// functions.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	exports, err := fixtureExports()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var goFiles []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := checkFiles(fset, imp, "diads/lintfixture/"+name, dir, goFiles)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// wantMarkers reads `// want <analyzer>` markers from a fixture,
// returning the set of expected (line, analyzer) findings.
func wantMarkers(t *testing.T, dir string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	re := regexp.MustCompile(`// want (\w+)`)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range re.FindAllStringSubmatch(sc.Text(), -1) {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), line, m[1])] = true
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// fixturePolicy runs fixtures in the determinism domain with no
// exemptions, so every analyzer is live.
func fixturePolicy(string) (Domain, []string) { return DomainDeterminism, nil }

// runFixture lints one fixture package and compares unsuppressed
// findings against the `// want` markers, returning the result for
// extra assertions.
func runFixture(t *testing.T, name string) *Result {
	t.Helper()
	pkg := loadFixture(t, name)
	res := Run(&Config{Policy: fixturePolicy}, []*Package{pkg})

	got := make(map[string]bool)
	for _, f := range res.Findings {
		if f.Suppressed {
			continue
		}
		base := filepath.Base(f.file)
		got[fmt.Sprintf("%s:%d:%s", base, f.line, f.Analyzer)] = true
	}
	want := wantMarkers(t, filepath.Join("testdata", "src", name))
	var missing, extra []string
	for w := range want {
		if !got[w] {
			missing = append(missing, w)
		}
	}
	for g := range got {
		if !want[g] {
			extra = append(extra, g)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 {
		t.Errorf("expected findings not reported:\n  %s", strings.Join(missing, "\n  "))
	}
	if len(extra) > 0 {
		t.Errorf("unexpected findings:\n  %s", strings.Join(extra, "\n  "))
	}
	return res
}

func TestMapIterFixture(t *testing.T) {
	res := runFixture(t, "mapiter")
	if c := res.Counts["mapiter"]; c.Suppressed != 1 {
		t.Errorf("mapiter suppressed = %d, want 1 (the annotated representative-error loop)", c.Suppressed)
	}
}

func TestWallTimeFixture(t *testing.T) {
	runFixture(t, "walltime")
}

func TestReadWindowFixture(t *testing.T) {
	runFixture(t, "readwindow")
}

func TestHorizonFixture(t *testing.T) {
	res := runFixture(t, "horizon")
	if c := res.Counts["horizon"]; c.Suppressed != 1 {
		t.Errorf("horizon suppressed = %d, want 1 (the annotated non-horizon derivation)", c.Suppressed)
	}
}

func TestMetricNameFixture(t *testing.T) {
	runFixture(t, "metricname")
}

func TestErrDiscardFixture(t *testing.T) {
	res := runFixture(t, "errdiscard")
	if c := res.Counts["errdiscard"]; c.Suppressed != 1 {
		t.Errorf("errdiscard suppressed = %d, want 1 (the annotated Close)", c.Suppressed)
	}
}

func TestDirectiveFixture(t *testing.T) {
	pkg := loadFixture(t, "directive")
	res := Run(&Config{Policy: fixturePolicy}, []*Package{pkg})
	var lines []int
	for _, f := range res.Findings {
		if f.Analyzer != directiveAnalyzer {
			t.Errorf("unexpected %s finding at %s", f.Analyzer, f.Pos)
			continue
		}
		if f.Suppressed {
			t.Errorf("directive finding at %s is suppressed; malformed directives must not be suppressible", f.Pos)
		}
		lines = append(lines, f.line)
	}
	sort.Ints(lines)
	want := []int{8, 11, 14}
	if fmt.Sprint(lines) != fmt.Sprint(want) {
		t.Errorf("directive findings at lines %v, want %v", lines, want)
	}
	if !res.Failed() {
		t.Error("malformed directives must fail the run")
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HorizonAnalyzer flags retention/truncation arithmetic outside
// internal/metrics. The retention contract (DESIGN.md, "Memory model &
// retention") is that truncation horizons are *derived* exactly once —
// Monitor.LowWatermark and Gate.LowWatermark pad through
// metrics.ReadWindow — and then flow to Truncate/Retain verbatim: the
// callers may take minima across watermark sources but never adjust a
// horizon arithmetically, because a horizon nudged past the low
// watermark silently deletes evidence a future diagnosis will read,
// and one nudged the other way leaks the memory the layer exists to
// bound. Mirroring readwindow, the rule flags:
//
//   - a call to a module Truncate or Retain method whose horizon
//     argument is computed with simtime arithmetic at the call site (a
//     hand-adjusted horizon), and
//   - +, -, or * arithmetic (including simtime.Time.Add) on a variable
//     bound from a LowWatermark() result.
//
// internal/metrics is the implementor — prefix-sum anchoring and the
// ReadWindow padding live there — and is exempted in policy.go. A site
// that legitimately derives a non-horizon quantity from a watermark
// annotates with //lint:allow horizon <reason>.
var HorizonAnalyzer = &Analyzer{
	Name:    "horizon",
	Doc:     "retention/truncation horizon arithmetic outside internal/metrics",
	Domains: []Domain{DomainDeterminism, DomainService, DomainTool},
	Run:     runHorizon,
}

func runHorizon(pass *Pass) {
	modulePath := pass.Config.modulePath()
	simtimePath := modulePath + "/internal/simtime"

	isSimTime := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == simtimePath && obj.Name() == "Time"
	}
	// moduleMethod resolves a selector call to its method object and
	// reports whether the method is defined under this module — horizon
	// polices the repo's own retention surfaces, not stdlib lookalikes
	// (time.Time.Truncate, for one).
	moduleMethod := func(sel *ast.SelectorExpr) bool {
		obj := pass.Info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		return obj.Pkg().Path() == modulePath ||
			strings.HasPrefix(obj.Pkg().Path(), modulePath+"/")
	}
	// containsTimeArith reports whether e computes simulated time: a ±
	// binary with a simtime.Time operand, or simtime.Time.Add.
	containsTimeArith := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if (n.Op == token.ADD || n.Op == token.SUB) &&
					(isSimTime(n.X) || isSimTime(n.Y)) {
					found = true
				}
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Add" && isSimTime(sel.X) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		// Pass 1: collect the objects bound from LowWatermark() calls.
		// Watermarks are compared (minima) and passed on — arithmetic on
		// one is the drift this rule exists to catch.
		watermarks := make(map[types.Object]bool)
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "LowWatermark" || !moduleMethod(sel) {
				return true
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					watermarks[obj] = true
				} else if obj := pass.Info.Uses[id]; obj != nil {
					watermarks[obj] = true
				}
			}
			return true
		})
		isWatermark := func(e ast.Expr) bool {
			id, ok := ast.Unparen(e).(*ast.Ident)
			return ok && watermarks[pass.Info.Uses[id]]
		}

		// Pass 2: report computed horizons and watermark arithmetic.
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.MUL:
				default:
					return true
				}
				if isWatermark(n.X) || isWatermark(n.Y) {
					pass.Reportf(n.Pos(),
						"arithmetic on a LowWatermark value: retention horizons pass verbatim; evidence padding lives in metrics.ReadWindow")
				}
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok || len(n.Args) != 1 {
					return true
				}
				switch sel.Sel.Name {
				case "Truncate", "Retain":
					if moduleMethod(sel) && containsTimeArith(n.Args[0]) {
						pass.Reportf(n.Args[0].Pos(),
							"computed truncation horizon passed to %s: horizons come from LowWatermark sources outside internal/metrics, passed verbatim", sel.Sel.Name)
					}
				case "Add":
					if isSimTime(sel.X) && isWatermark(sel.X) {
						pass.Reportf(n.Pos(),
							"arithmetic on a LowWatermark value: retention horizons pass verbatim; evidence padding lives in metrics.ReadWindow")
					}
				}
			}
			return true
		})
	}
}

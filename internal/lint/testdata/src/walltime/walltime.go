// Package walltimefix is the walltime analyzer fixture.
package walltimefix

import (
	"math/rand"
	"time"

	"diads/internal/simtime"
)

// stampNow reads the wall clock where only simulated time may exist.
func stampNow() float64 {
	return float64(time.Now().UnixNano()) // want walltime
}

// elapsed measures wall time.
func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want walltime
}

// jitter draws from the global math/rand stream.
func jitter() float64 {
	return rand.Float64() // want walltime
}

// localRNG is just as bad: even seeded, it is not a per-series simtime
// stream, so chunked emission re-orders the draws.
func localRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want walltime
}

// simulated is the sanctioned path: simtime's clock and seeded streams.
func simulated(r *simtime.Rand, t simtime.Time, d simtime.Duration) (float64, simtime.Time) {
	return r.Float64(), t.Add(d)
}

// durations only name units; they never read a clock.
func durations() time.Duration {
	return 5 * time.Minute
}

// Package metricnamefix is the metricname analyzer fixture.
package metricnamefix

import (
	"fmt"

	"diads/internal/telemetry"
)

// sprintfName builds a family name at runtime: promcheck and the
// exposition docs can no longer enumerate the namespace.
func sprintfName(reg *telemetry.Registry, shard int) *telemetry.Counter {
	return reg.Counter(fmt.Sprintf("diads_shard_%d_ops_total", shard), "ops", nil) // want metricname
}

// wrongPrefix leaves the diads_* namespace.
func wrongPrefix(reg *telemetry.Registry) *telemetry.Gauge {
	return reg.Gauge("fleet_depth", "queue depth", nil) // want metricname
}

// notSnakeCase sneaks capitals into the family name.
func notSnakeCase(reg *telemetry.Registry) *telemetry.Histogram {
	return reg.Histogram("diads_WaveSeconds", "wave wall time", nil, nil) // want metricname
}

// funcRegistration is checked too.
func funcRegistration(reg *telemetry.Registry, shard string) {
	reg.GaugeFunc("diads_queue_"+shard, "depth", nil, func() float64 { return 0 }) // want metricname
}

// literalName is the sanctioned shape: a diads_* snake_case literal,
// with dimensions in labels.
func literalName(reg *telemetry.Registry, shard string) *telemetry.Counter {
	return reg.Counter("diads_shard_ops_total", "ops", telemetry.Labels{"shard": shard})
}

// constName: named constants are still statically enumerable.
const waveSeconds = "diads_fleet_wave_seconds"

func constName(reg *telemetry.Registry) *telemetry.Histogram {
	return reg.Histogram(waveSeconds, "wave wall time", nil, nil)
}

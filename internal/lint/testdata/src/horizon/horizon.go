// Package horizonfix is the horizon analyzer fixture.
package horizonfix

import (
	"diads/internal/metrics"
	"diads/internal/simtime"
)

// mon mimics a watermark source: the analyzer resolves LowWatermark
// calls by method name on module types, so a fixture-local source
// exercises the same path as monitor.Monitor or monitor.Gate.
type mon struct{}

func (mon) LowWatermark() (simtime.Time, bool) { return 0, false }

// handAdjusted nudges the horizon at the call site — the drift that
// silently deletes evidence a future diagnosis reads.
func handAdjusted(s *metrics.Store, lw simtime.Time) {
	s.Truncate(lw - 60) // want horizon
}

// addAdjusted writes the same drift through Time.Add.
func addAdjusted(s *metrics.Store, lw simtime.Time) {
	s.Truncate(lw.Add(-2 * simtime.Minute)) // want horizon
}

// watermarkArith adjusts a bound watermark before passing it on.
func watermarkArith(s *metrics.Store, m mon) {
	lw, ok := m.LowWatermark()
	if !ok {
		return
	}
	adjusted := lw - 60 // want horizon
	s.Truncate(adjusted)
}

// watermarkAdd pads a watermark through Add.
func watermarkAdd(m mon) simtime.Time {
	lw, _ := m.LowWatermark()
	return lw.Add(2 * simtime.Minute) // want horizon
}

// verbatim is the sanctioned shape: minima across watermark sources,
// the result passed untouched.
func verbatim(s *metrics.Store, m, g mon) {
	lw, ok := m.LowWatermark()
	if !ok {
		return
	}
	if b, pending := g.LowWatermark(); pending && b < lw {
		lw = b
	}
	s.Truncate(lw)
}

// annotated derives a non-horizon quantity from a watermark and says
// why — the suppression the fixture test counts.
func annotated(m mon) simtime.Time {
	lw, _ := m.LowWatermark()
	//lint:allow horizon derives a display span, not a truncation horizon
	return lw + 60
}

// unrelatedArithmetic on simulated time not bound from a watermark is
// readwindow's business, not horizon's.
func unrelatedArithmetic(t simtime.Time) simtime.Time {
	return t + 60
}

// Package errdiscardfix is the errdiscard analyzer fixture. Its
// helpers are module functions (the fixture is loaded under the diads
// module path), so their errors are must-handle; stdlib errors are out
// of scope.
package errdiscardfix

import (
	"fmt"
	"strings"
)

// store mimics symdb: Add returns an error that PR 5 found being
// silently swallowed.
type store struct{ entries []string }

func (s *store) Add(entry string) error {
	if entry == "" {
		return fmt.Errorf("empty entry")
	}
	s.entries = append(s.entries, entry)
	return nil
}

func (s *store) Lookup(k string) (string, error) {
	for _, e := range s.entries {
		if e == k {
			return e, nil
		}
	}
	return "", fmt.Errorf("not found")
}

func (s *store) Close() error { return nil }

// bareCall drops the Add error on the floor.
func bareCall(s *store, e string) {
	s.Add(e) // want errdiscard
}

// blankAssign discards it explicitly.
func blankAssign(s *store, e string) {
	_ = s.Add(e) // want errdiscard
}

// tupleBlank keeps the value but drops the error.
func tupleBlank(s *store, k string) string {
	v, _ := s.Lookup(k) // want errdiscard
	return v
}

// deferred discards on the way out.
func deferred(s *store) {
	defer s.Close() // want errdiscard
}

// handled is the sanctioned shape.
func handled(s *store, e string) error {
	if err := s.Add(e); err != nil {
		return fmt.Errorf("adding %q: %w", e, err)
	}
	return nil
}

// stdlibDiscard is out of scope: fmt.Fprintf to a strings.Builder
// cannot usefully fail and fmt is not a module package.
func stdlibDiscard() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 1)
	return b.String()
}

// annotated records why the discard is intentional.
func annotated(s *store) {
	//lint:allow errdiscard close on the shutdown path; the store is already flushed
	s.Close()
}

// Package mapiterfix is the mapiter analyzer fixture. Bad cases carry
// inline markers; everything else must stay finding-free.
package mapiterfix

import (
	"maps"
	"sort"

	"diads/internal/simtime"
)

// prng mimics a stateful sampler stream: each draw advances hidden
// state, so the sequence of values depends on call order.
type prng struct{ r *simtime.Rand }

func (p *prng) draw() float64 { return p.r.Float64() }

// emitNetworkMetrics reconstructs the PR 4 EmitNetworkMetrics bug
// shape: ranging over a map and drawing measurement noise per entry
// writes a map-order-dependent noise stream into the samples.
func emitNetworkMetrics(links map[string]float64, p *prng) map[string]float64 {
	out := make(map[string]float64, len(links))
	for name, base := range links { // want mapiter
		out[name] = base * (1 + p.draw())
	}
	return out
}

// sumFloats accumulates floats in map order: float addition does not
// commute, so the total differs between runs.
func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want mapiter
		total += v
	}
	return total
}

// lastWins keeps whichever entry the runtime visits last.
func lastWins(m map[string]string) string {
	var pick string
	for _, v := range m { // want mapiter
		pick = v
	}
	return pick
}

// unsortedKeys collects keys but never sorts them.
func unsortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want mapiter
		keys = append(keys, k)
	}
	return keys
}

// earlyExit returns a map-order-dependent element.
func earlyExit(m map[string]int) string {
	for k, v := range m { // want mapiter
		if v > 0 {
			return k
		}
	}
	return ""
}

// collidingWrite rekeys entries through a lossy function: two source
// keys can land on one destination slot, and the survivor depends on
// iteration order.
func collidingWrite(m map[string]int, group func(string) string) map[string]int {
	out := make(map[string]int)
	for k, v := range m { // want mapiter
		out[group(k)] = v
	}
	return out
}

// iterKeys forwards map order through the maps.Keys iterator.
func iterKeys(m map[string]int) []string {
	var keys []string
	for k := range maps.Keys(m) { // want mapiter
		keys = append(keys, k)
	}
	return keys
}

// sortedKeys is the canonical escape: collect, then sort.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// rebuild writes into a destination map keyed by the loop key:
// distinct slots, order-free.
func rebuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// countMatching uses only commutative integer accumulation and a
// constant-return existence check.
func countMatching(m map[string]int, want int) int {
	n := 0
	for _, v := range m {
		if v == want {
			n++
		}
	}
	return n
}

// contains returns only constants, so which iteration returns is
// invisible.
func contains(m map[string]bool, k string) bool {
	for key := range m {
		if key == k {
			return true
		}
	}
	return false
}

// maxValue tracks an extremum with the commutative max builtin.
func maxValue(m map[string]int) int {
	best := 0
	for _, v := range m {
		best = max(best, v)
	}
	return best
}

// pruneZero deletes by loop key, which Go's range spec permits and
// which is order-insensitive.
func pruneZero(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// suppressed shows the escape hatch: the effect is order-sensitive but
// intentionally so (error aggregation where any representative works),
// and the reason is recorded.
func suppressed(m map[string]error) error {
	//lint:allow mapiter any representative error works; callers treat them as equivalent
	for _, err := range m {
		if err != nil {
			return err
		}
	}
	return nil
}

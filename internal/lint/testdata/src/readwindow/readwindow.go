// Package readwindowfix is the readwindow analyzer fixture.
package readwindowfix

import (
	"diads/internal/metrics"
	"diads/internal/simtime"
)

// handPadded rebuilds the PR 4 drift: padding an activity window by
// hand instead of calling metrics.ReadWindow.
func handPadded(iv simtime.Interval) simtime.Interval {
	return simtime.NewInterval(
		iv.Start.Add(-metrics.DefaultMonitorInterval), // want readwindow
		iv.End.Add(metrics.DefaultMonitorInterval),    // want readwindow
	)
}

// literalPadded writes the same drift without naming the constant —
// the exact shape the six deduplicated copies had.
func literalPadded(start, end simtime.Time) (simtime.Time, simtime.Time) {
	return start.Add(-5 * simtime.Minute), end.Add(5 * simtime.Minute) // want readwindow
}

// binaryPadded pads with raw Time arithmetic.
func binaryPadded(t simtime.Time) simtime.Time {
	return t - 300 // want readwindow
}

// derivedMargin does arithmetic on the interval constant outside its
// home package.
var derivedMargin = 2 * metrics.DefaultMonitorInterval // want readwindow

// throughContract is the sanctioned path.
func throughContract(iv simtime.Interval) simtime.Interval {
	return metrics.ReadWindow(iv)
}

// plainUse reads the constant without arithmetic (e.g. configuring a
// sampler interval), which is fine.
var plainUse = metrics.DefaultMonitorInterval

// unrelatedArithmetic on simulated time with other magnitudes is fine.
func unrelatedArithmetic(t simtime.Time) simtime.Time {
	return t.Add(60 * simtime.Second)
}

// Package directivefix exercises malformed //lint:allow comments,
// which are findings in their own right and cannot be suppressed. The
// driver test asserts one "directive" finding per comment below (lines
// 8, 11, and 14) — no inline markers, since the marker would become
// part of the directive text.
package directivefix

//lint:allow
func a() {}

//lint:allow nosuchrule because reasons
func b() {}

//lint:allow mapiter
func c() {}

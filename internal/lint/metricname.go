package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// MetricNameAnalyzer checks telemetry registrations: every
// counter/gauge/histogram family registered against a
// telemetry.Registry must use a statically-known diads_* snake_case
// name. A fmt.Sprintf-built family name is invisible to promcheck and
// to anyone grepping the exposition for the namespace, and a name
// outside diads_* breaks the repo-wide convention the /metrics surface
// documents. Dimensions belong in labels, not in the family name.
var MetricNameAnalyzer = &Analyzer{
	Name:    "metricname",
	Doc:     "telemetry registration with a non-literal or non-diads_* family name",
	Domains: []Domain{DomainDeterminism, DomainService, DomainTool},
	Run:     runMetricName,
}

// registrationMethods are the telemetry.Registry methods that register
// a metric family; the first argument is the family name.
var registrationMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
}

func runMetricName(pass *Pass) {
	telemetryPath := pass.Config.modulePath() + "/internal/telemetry"
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || !registrationMethods[fn.Name()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if fn.Pkg() == nil || fn.Pkg().Path() != telemetryPath {
				return true
			}
			name := call.Args[0]
			v := constValue(pass, name)
			if v == nil || v.Kind() != constant.String {
				pass.Reportf(name.Pos(),
					"telemetry %s family name is not a compile-time constant: /metrics must stay statically enumerable (put dimensions in labels)",
					fn.Name())
				return true
			}
			if s := constant.StringVal(v); !validMetricName(s) {
				pass.Reportf(name.Pos(),
					"telemetry family name %q is not diads_* snake_case", s)
			}
			return true
		})
	}
}

// validMetricName accepts diads_* snake_case family names.
func validMetricName(s string) bool {
	const prefix = "diads_"
	if len(s) <= len(prefix) || s[:len(prefix)] != prefix {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' {
			continue
		}
		return false
	}
	return true
}

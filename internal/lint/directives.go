package lint

import (
	"strings"
)

// directiveAnalyzer names the pseudo-analyzer that reports malformed
// //lint:allow comments. Its findings cannot be suppressed.
const directiveAnalyzer = "directive"

const directivePrefix = "//lint:allow"

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	reason   string
}

// directiveIndex maps (file, line) to the suppressions declared there.
// A directive covers findings on its own line (trailing comment) and
// on the line directly below it (comment above the statement).
type directiveIndex map[string]map[int][]directive

func (idx directiveIndex) covering(file string, line int, analyzer string) (string, bool) {
	lines := idx[file]
	for _, l := range []int{line, line - 1} {
		for _, d := range lines[l] {
			if d.analyzer == analyzer {
				return d.reason, true
			}
		}
	}
	return "", false
}

// parseDirectives scans a package's comments for //lint:allow
// directives. Malformed directives — no analyzer, unknown analyzer, or
// a missing reason — are findings in their own right: a suppression
// without a recorded justification is how suppression creep starts.
func parseDirectives(pkg *Package) (directiveIndex, []Finding) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	idx := make(directiveIndex)
	var findings []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				pos := pkg.Fset.Position(c.Pos())
				bad := func(msg string) {
					findings = append(findings, Finding{
						Analyzer: directiveAnalyzer,
						Package:  pkg.ImportPath,
						Pos:      pos.String(),
						Message:  msg,
						line:     pos.Line,
						file:     pos.Filename,
					})
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// Some other //lint:allowX token; not ours.
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad("//lint:allow needs an analyzer name and a reason")
					continue
				}
				name := fields[0]
				if !known[name] {
					bad("//lint:allow names unknown analyzer " + name)
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
				if reason == "" {
					bad("//lint:allow " + name + " needs a non-empty reason")
					continue
				}
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = make(map[int][]directive)
				}
				idx[pos.Filename][pos.Line] = append(idx[pos.Filename][pos.Line],
					directive{analyzer: name, reason: reason})
			}
		}
	}
	return idx, findings
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ReadWindowAnalyzer flags ad-hoc evidence-window padding arithmetic
// that bypasses metrics.ReadWindow. PR 4 existed because six drifted
// copies of "pad the activity window by one monitoring interval"
// disagreed with the emission watermark; ReadWindow is now the single
// definition, and this rule keeps it that way by flagging:
//
//   - any +, -, or * arithmetic involving metrics.DefaultMonitorInterval
//     outside its home package (a padded bound built by hand),
//   - simtime.Time.Add with a ±one-monitoring-interval constant
//     argument (the historic drift shape, written without naming the
//     constant), and
//   - t ± <one monitoring interval> binary arithmetic on simtime.Time.
//
// Code that legitimately derives a non-evidence span from the
// monitoring interval (an emission horizon, a sampler step) annotates
// the site with //lint:allow readwindow <reason>.
var ReadWindowAnalyzer = &Analyzer{
	Name:    "readwindow",
	Doc:     "evidence-window padding arithmetic outside metrics.ReadWindow",
	Domains: []Domain{DomainDeterminism, DomainService, DomainTool},
	Run:     runReadWindow,
}

// monitorIntervalSeconds mirrors metrics.DefaultMonitorInterval (5
// simulated minutes). Kept as a literal so the linter does not import
// the package it polices.
const monitorIntervalSeconds = 300

func runReadWindow(pass *Pass) {
	metricsPath := pass.Config.modulePath() + "/internal/metrics"
	simtimePath := pass.Config.modulePath() + "/internal/simtime"

	isDMI := func(e ast.Expr) bool {
		var id *ast.Ident
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return false
		}
		obj := pass.Info.Uses[id]
		return obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == metricsPath && obj.Name() == "DefaultMonitorInterval"
	}
	mentionsDMI := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if expr, ok := n.(ast.Expr); ok && isDMI(expr) {
				found = true
			}
			return !found
		})
		return found
	}
	isSimTime := func(e ast.Expr) bool {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == simtimePath && obj.Name() == "Time"
	}
	isIntervalConst := func(e ast.Expr) bool {
		v := constValue(pass, e)
		if v == nil {
			return false
		}
		f, ok := constant.Float64Val(constant.ToFloat(v))
		if !ok {
			return false
		}
		return f == monitorIntervalSeconds || f == -monitorIntervalSeconds
	}

	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.MUL:
				default:
					return true
				}
				if isDMI(n.X) || isDMI(n.Y) {
					pass.Reportf(n.Pos(),
						"arithmetic on metrics.DefaultMonitorInterval outside internal/metrics: evidence windows come from metrics.ReadWindow")
					return true
				}
				if n.Op != token.MUL && (isSimTime(n.X) && isIntervalConst(n.Y) ||
					isSimTime(n.Y) && isIntervalConst(n.X)) {
					pass.Reportf(n.Pos(),
						"hand-written one-monitoring-interval padding on a simtime.Time: use metrics.ReadWindow")
				}
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Add" || len(n.Args) != 1 {
					return true
				}
				if !isSimTime(sel.X) {
					return true
				}
				if mentionsDMI(n.Args[0]) || isIntervalConst(n.Args[0]) {
					pass.Reportf(n.Pos(),
						"simtime.Time.Add with one-monitoring-interval padding: use metrics.ReadWindow")
				}
			}
			return true
		})
	}
}

package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MapIterAnalyzer flags `for range` over a map in determinism-domain
// packages unless the loop body is provably order-insensitive or the
// accumulated keys/values are sorted before use. Map iteration order
// is randomized per run; any order-sensitive effect inside the loop —
// most insidiously a draw from a stateful RNG or sampler, which is the
// exact shape of the PR 4 EmitNetworkMetrics bug — leaks that order
// into rendered evidence.
//
// Recognized order-insensitive shapes (everything else is a finding):
//
//   - building another map keyed by the loop key: dst[k] = v, dst[k] += v
//   - deleting by loop key: delete(m2, k)
//   - commutative scalar accumulation: integer += / ++ / -- / |= / &= / ^=,
//     bool x = x || e / x = x && e, x = min(x, e) / x = max(x, e)
//     (float += is NOT safe: float addition is order-dependent)
//   - collecting into a slice that a sort.* / slices.* call sorts later
//     in the same function
//   - constant-only early returns (existence checks) and continue
//
// Any non-builtin call in the loop body voids safety: a call can draw
// from a shared stream or otherwise sequence hidden state in map
// order, which is precisely what the determinism sweeps catch too
// late.
var MapIterAnalyzer = &Analyzer{
	Name:    "mapiter",
	Doc:     "map iteration with an order-sensitive body in a determinism-domain package",
	Domains: []Domain{DomainDeterminism},
	Run:     runMapIter,
}

func runMapIter(pass *Pass) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Body != nil {
					mapIterStmts(pass, decl.Body.List)
				}
			case *ast.GenDecl:
				// Function literals in package-level initializers.
				ast.Inspect(decl, func(n ast.Node) bool {
					if fl, ok := n.(*ast.FuncLit); ok {
						mapIterStmts(pass, fl.Body.List)
						return false
					}
					return true
				})
			}
		}
	}
}

// mapIterStmts walks a statement list, analyzing each map-range loop
// with the statements that follow it (needed for the append-then-sort
// idiom) and recursing into nested statement lists.
func mapIterStmts(pass *Pass, list []ast.Stmt) {
	for i, s := range list {
		if rs, ok := s.(*ast.RangeStmt); ok && rangesOverMap(pass, rs) {
			checkMapRange(pass, rs, list[i+1:])
		}
		for _, nested := range nestedStmtLists(s) {
			mapIterStmts(pass, nested)
		}
	}
}

// nestedStmtLists returns the statement lists nested directly inside s.
func nestedStmtLists(s ast.Stmt) [][]ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{s.List}
	case *ast.IfStmt:
		out := [][]ast.Stmt{s.Body.List}
		if s.Else != nil {
			out = append(out, []ast.Stmt{s.Else})
		}
		return out
	case *ast.ForStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.SwitchStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.TypeSwitchStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.SelectStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.CaseClause:
		return [][]ast.Stmt{s.Body}
	case *ast.CommClause:
		return [][]ast.Stmt{s.Body}
	case *ast.LabeledStmt:
		return [][]ast.Stmt{{s.Stmt}}
	case *ast.ExprStmt:
		// Function literals used as arguments run their own bodies.
		var out [][]ast.Stmt
		ast.Inspect(s, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				out = append(out, fl.Body.List)
				return false
			}
			return true
		})
		return out
	case *ast.AssignStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt, *ast.DeclStmt:
		var out [][]ast.Stmt
		ast.Inspect(s, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				out = append(out, fl.Body.List)
				return false
			}
			return true
		})
		return out
	}
	return nil
}

// rangesOverMap reports whether rs iterates in map order: directly over
// a map, or over the maps.Keys / maps.Values / maps.All iterators
// (which forward the same randomized order).
func rangesOverMap(pass *Pass, rs *ast.RangeStmt) bool {
	if tv, ok := pass.Info.Types[rs.X]; ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return true
		}
	}
	if call, ok := ast.Unparen(rs.X).(*ast.CallExpr); ok {
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "maps" {
			switch fn.Name() {
			case "Keys", "Values", "All":
				return true
			}
		}
	}
	return false
}

// mapIterCtx is the state threaded through the body classification.
type mapIterCtx struct {
	pass *Pass
	// key is the loop's key variable object (nil for `for range m`).
	key types.Object
	// appended maps slice targets (rendered with types.ExprString, so
	// fields work as well as locals) appended to inside the loop to
	// the append position, pending an after-loop sort.
	appended map[string]token.Pos
	// offender is the first order-sensitive statement found.
	offender ast.Node
	// why describes the offense.
	why string
}

func (c *mapIterCtx) fail(n ast.Node, why string) bool {
	if c.offender == nil {
		c.offender = n
		c.why = why
	}
	return false
}

// checkMapRange classifies one map-range loop and reports it when the
// body is order-sensitive or accumulated slices are never sorted.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	ctx := &mapIterCtx{pass: pass, appended: make(map[string]token.Pos)}
	if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
		ctx.key = pass.Info.Defs[id]
	}
	// The value variable existing is fine; what matters is what the
	// body does with it.
	safe := safeStmtList(ctx, rs.Body.List)
	if !safe {
		pos := "loop body"
		if ctx.offender != nil {
			pos = pass.Fset.Position(ctx.offender.Pos()).String()
		}
		pass.Reportf(rs.Pos(),
			"map iteration order reaches %s (%s); sort the keys first or annotate //lint:allow mapiter <reason>",
			pos, ctx.why)
		return
	}
	targets := make([]string, 0, len(ctx.appended))
	for target := range ctx.appended {
		targets = append(targets, target)
	}
	sort.Strings(targets)
	for _, target := range targets {
		if !sortedAfter(pass, target, rest) {
			pass.Reportf(rs.Pos(),
				"slice %s accumulates map-ordered entries (append at %s) but is never sorted afterwards; sort it or annotate //lint:allow mapiter <reason>",
				target, pass.Fset.Position(ctx.appended[target]))
			return
		}
	}
}

func safeStmtList(ctx *mapIterCtx, list []ast.Stmt) bool {
	for _, s := range list {
		if !safeStmt(ctx, s) {
			return false
		}
	}
	return true
}

// safeStmt reports whether one statement is provably order-insensitive
// under the recognized shapes.
func safeStmt(ctx *mapIterCtx, s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.AssignStmt:
		return safeAssign(ctx, s)
	case *ast.IncDecStmt:
		if isIntegral(ctx.pass, s.X) {
			return true
		}
		return ctx.fail(s, "non-integer ++/-- accumulates in map order")
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isDeleteByKey(ctx, call) {
			return true
		}
		return ctx.fail(s, "call with possible order-dependent effects")
	case *ast.IfStmt:
		if isExtremumIf(ctx, s) {
			return true
		}
		if s.Init != nil && !safeStmt(ctx, s.Init) {
			return false
		}
		if !callFree(ctx, s.Cond) {
			return ctx.fail(s.Cond, "condition calls a function whose state may sequence in map order")
		}
		if !safeStmtList(ctx, s.Body.List) {
			return false
		}
		if s.Else != nil && !safeStmt(ctx, s.Else) {
			return false
		}
		return true
	case *ast.BlockStmt:
		return safeStmtList(ctx, s.List)
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return true
		}
		return ctx.fail(s, "early loop exit depends on iteration order")
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if tv, ok := ctx.pass.Info.Types[r]; !ok || tv.Value == nil {
				return ctx.fail(s, "non-constant return value depends on which iteration returns")
			}
		}
		return true
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return ctx.fail(s, "unrecognized declaration in loop body")
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					if !callFree(ctx, v) {
						return ctx.fail(v, "initializer calls a function whose state may sequence in map order")
					}
				}
			}
		}
		return true
	case *ast.RangeStmt:
		if !callFree(ctx, s.X) {
			return ctx.fail(s.X, "nested range expression calls a function")
		}
		return safeStmtList(ctx, s.Body.List)
	case *ast.ForStmt:
		if s.Init != nil && !safeStmt(ctx, s.Init) {
			return false
		}
		if s.Cond != nil && !callFree(ctx, s.Cond) {
			return ctx.fail(s.Cond, "nested loop condition calls a function")
		}
		if s.Post != nil && !safeStmt(ctx, s.Post) {
			return false
		}
		return safeStmtList(ctx, s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil && !safeStmt(ctx, s.Init) {
			return false
		}
		if s.Tag != nil && !callFree(ctx, s.Tag) {
			return ctx.fail(s.Tag, "switch tag calls a function")
		}
		return safeStmtList(ctx, s.Body.List)
	case *ast.CaseClause:
		for _, e := range s.List {
			if !callFree(ctx, e) {
				return ctx.fail(e, "case expression calls a function")
			}
		}
		return safeStmtList(ctx, s.Body)
	}
	return ctx.fail(s, "statement kind is not provably order-insensitive")
}

// safeAssign classifies assignment statements.
func safeAssign(ctx *mapIterCtx, s *ast.AssignStmt) bool {
	// Multi-assign is only safe when every piece independently is; keep
	// to the single-LHS shapes plus blank discards.
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return ctx.fail(s, "multi-assignment in loop body")
	}
	lhs, rhs := s.Lhs[0], s.Rhs[0]

	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		if callFree(ctx, rhs) {
			return true
		}
		return ctx.fail(rhs, "discarded call may sequence hidden state in map order")
	}

	switch s.Tok {
	case token.DEFINE:
		// A fresh per-iteration local has no cross-iteration effect as
		// long as computing it has none.
		if callFree(ctx, rhs) {
			return true
		}
		return ctx.fail(rhs, "local initializer calls a function whose state may sequence in map order")
	case token.ASSIGN:
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			return safeMapWrite(ctx, s, ix, rhs)
		}
		if safeCommutativeAssign(ctx, lhs, rhs) {
			return true
		}
		return ctx.fail(s, "plain reassignment keeps only the last map-ordered value")
	case token.ADD_ASSIGN:
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			return safeMapWrite(ctx, s, ix, rhs)
		}
		if isIntegral(ctx.pass, lhs) && callFree(ctx, rhs) {
			return true
		}
		return ctx.fail(s, "non-integer += accumulation is order-dependent (float addition does not commute)")
	case token.SUB_ASSIGN:
		if isIntegral(ctx.pass, lhs) && callFree(ctx, rhs) {
			return true
		}
		return ctx.fail(s, "non-integer -= accumulation is order-dependent")
	case token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if isIntegral(ctx.pass, lhs) && callFree(ctx, rhs) {
			return true
		}
		return ctx.fail(s, "bitwise accumulation on a non-integer type")
	}
	return ctx.fail(s, "assignment form is not provably order-insensitive")
}

// safeMapWrite accepts dst[k...] = v / dst[k...] op= v when the index
// mentions the loop key (distinct per iteration, so no overwrite race
// with iteration order) and the value computation is call-free.
func safeMapWrite(ctx *mapIterCtx, s ast.Stmt, ix *ast.IndexExpr, rhs ast.Expr) bool {
	tv, ok := ctx.pass.Info.Types[ix.X]
	if !ok || tv.Type == nil {
		return ctx.fail(s, "unresolvable indexed assignment")
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return ctx.fail(s, "indexed write outside a map (slot may collide across iterations)")
	}
	// Set building: writing a constant (seen[v] = true) is idempotent,
	// so colliding slots still converge regardless of visit order.
	if constantValue(ctx.pass, rhs) && callFree(ctx, ix.Index) {
		return true
	}
	if ctx.key == nil || !mentionsObj(ctx.pass, ix.Index, ctx.key) {
		return ctx.fail(s, "map write whose key does not include the loop key may collide in map order")
	}
	// The key use must be injective: a call or slice of the key can
	// map two distinct keys onto one destination slot.
	if !callFree(ctx, ix.Index) || containsSliceExpr(ix.Index) {
		return ctx.fail(ix.Index, "map-write key transforms the loop key; two keys may collide in map order")
	}
	if !callFree(ctx, rhs) {
		return ctx.fail(rhs, "map-write value calls a function whose state may sequence in map order")
	}
	return true
}

// isExtremumIf recognizes min/max tracking written as a guard:
//
//	if e < t { t = e }   (or >, <=, >=, operands either way around)
//
// The resulting extremum VALUE is order-independent (ties produce the
// same value), so the shape is safe when both expressions are
// call-free. Works for plain variables and keyed slots alike — a
// max-merge into m[k] is commutative even when keys collide.
func isExtremumIf(ctx *mapIterCtx, s *ast.IfStmt) bool {
	if s.Init != nil || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	cond, ok := ast.Unparen(s.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	as, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	if !callFree(ctx, cond.X) || !callFree(ctx, cond.Y) {
		return false
	}
	lhs, rhs := exprString(as.Lhs[0]), exprString(as.Rhs[0])
	x, y := exprString(cond.X), exprString(cond.Y)
	return (lhs == x && rhs == y) || (lhs == y && rhs == x)
}

// safeCommutativeAssign accepts x = x || e, x = x && e,
// x = min/max(x, e) and slice-append accumulation t = append(t, ...),
// where x/t may be a variable or a field (compared structurally via
// types.ExprString).
func safeCommutativeAssign(ctx *mapIterCtx, lhs, rhs ast.Expr) bool {
	lhs = ast.Unparen(lhs)
	switch lhs.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return false
	}
	target := exprString(lhs)
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.BinaryExpr:
		if rhs.Op != token.LOR && rhs.Op != token.LAND {
			return false
		}
		return exprString(ast.Unparen(rhs.X)) == target && callFree(ctx, rhs.Y)
	case *ast.CallExpr:
		fn, ok := ast.Unparen(rhs.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		switch fn.Name {
		case "min", "max":
			if !isBuiltin(ctx.pass, fn) || len(rhs.Args) < 2 {
				return false
			}
			selfArg := false
			for _, a := range rhs.Args {
				if exprString(ast.Unparen(a)) == target {
					selfArg = true
				} else if !callFree(ctx, a) {
					return false
				}
			}
			return selfArg
		case "append":
			if !isBuiltin(ctx.pass, fn) || len(rhs.Args) == 0 {
				return false
			}
			if exprString(ast.Unparen(rhs.Args[0])) != target {
				return false
			}
			for _, a := range rhs.Args[1:] {
				if !callFree(ctx, a) {
					return false
				}
			}
			if _, seen := ctx.appended[target]; !seen {
				ctx.appended[target] = rhs.Pos()
			}
			return true
		}
	}
	return false
}

// isDeleteByKey accepts delete(m, k...) where the key expression
// mentions the loop key.
func isDeleteByKey(ctx *mapIterCtx, call *ast.CallExpr) bool {
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "delete" || !isBuiltin(ctx.pass, fn) || len(call.Args) != 2 {
		return false
	}
	return ctx.key != nil && mentionsObj(ctx.pass, call.Args[1], ctx.key)
}

// callFree reports whether e contains no function or method calls
// other than type conversions and the pure builtins len/cap/min/max.
// A call inside a map-range body can draw from a stateful stream (the
// PR 4 RNG bug) or otherwise sequence hidden state in map order, so
// order-insensitivity is only provable without them.
func callFree(ctx *mapIterCtx, e ast.Expr) bool {
	if e == nil {
		return true
	}
	safe := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return safe
		}
		if tv, ok := ctx.pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return safe // type conversion
		}
		if fn, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isBuiltin(ctx.pass, fn) {
			switch fn.Name {
			case "len", "cap", "min", "max":
				return safe
			}
		}
		safe = false
		return false
	})
	return safe
}

// sortedAfter reports whether a sort.* or slices.* call in the
// statements following the loop sorts the accumulated slice (matched
// structurally: the call's first argument contains the target
// expression, so sort.Sort(byName(keys)) counts too).
func sortedAfter(pass *Pass, target string, rest []ast.Stmt) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "sort", "slices":
			default:
				return true
			}
			if len(call.Args) > 0 && strings.Contains(exprString(call.Args[0]), target) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// exprString renders an expression structurally for comparison.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// constantValue reports whether e is a compile-time constant or the
// empty composite literal (struct{}{}).
func constantValue(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if cl, ok := e.(*ast.CompositeLit); ok {
		return len(cl.Elts) == 0
	}
	return constValue(pass, e) != nil
}

// containsSliceExpr reports whether e contains a slicing expression.
func containsSliceExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.SliceExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// mentionsObj reports whether e references obj.
func mentionsObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// isIntegral reports whether e has an integer type.
func isIntegral(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// isBuiltin reports whether id resolves to a universe builtin.
func isBuiltin(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// calleeFunc resolves the called function object, if statically known.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// constValue returns the constant value of e, if any.
func constValue(pass *Pass, e ast.Expr) constant.Value {
	if tv, ok := pass.Info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDiscardAnalyzer flags discarded error returns from this module's
// own functions: bare call statements, `_ =` assignments, and blank
// identifiers aligned with an error result in multi-assignments
// (`v, _ := f()`). PR 5 existed in part because symdb.Add errors were
// silently swallowed; an error a diads function bothers to return is a
// contract, and dropping it on the floor hides exactly the failures
// the reproducibility story depends on. Stdlib and third-party callees
// are out of scope (fmt.Fprintf to a strings.Builder is fine).
// Intentional discards annotate the site with
// //lint:allow errdiscard <reason>.
var ErrDiscardAnalyzer = &Analyzer{
	Name:    "errdiscard",
	Doc:     "discarded error return from a diads function",
	Domains: []Domain{DomainDeterminism, DomainService, DomainTool},
	Run:     runErrDiscard,
}

func runErrDiscard(pass *Pass) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					checkBareCall(pass, call, "")
				}
			case *ast.GoStmt:
				checkBareCall(pass, n.Call, "go ")
			case *ast.DeferStmt:
				checkBareCall(pass, n.Call, "defer ")
			case *ast.AssignStmt:
				checkAssignDiscard(pass, n)
			}
			return true
		})
	}
}

// checkBareCall reports a statement-position call to a module function
// whose results include an error.
func checkBareCall(pass *Pass, call *ast.CallExpr, prefix string) {
	fn, idx := moduleErrorResult(pass, call)
	if fn == nil {
		return
	}
	pass.Reportf(call.Pos(),
		"%s%s returns an error (result %d) that is discarded; handle it or annotate //lint:allow errdiscard <reason>",
		prefix, fnLabel(fn), idx)
}

// checkAssignDiscard reports blank identifiers aligned with an error
// result of a module call: `_ = f()`, `v, _ := f()`, `_, _ = f(), g()`.
func checkAssignDiscard(pass *Pass, as *ast.AssignStmt) {
	// Tuple form: x, _ := f()
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn, idx := moduleErrorResult(pass, call)
		if fn == nil || idx >= len(as.Lhs) {
			return
		}
		if id, ok := as.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(as.Pos(),
				"error result of %s assigned to _; handle it or annotate //lint:allow errdiscard <reason>",
				fnLabel(fn))
		}
		return
	}
	// Parallel form: _ = f(), each position independent.
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn, _ := moduleErrorResult(pass, call)
		if fn == nil {
			continue
		}
		pass.Reportf(as.Pos(),
			"error result of %s assigned to _; handle it or annotate //lint:allow errdiscard <reason>",
			fnLabel(fn))
	}
}

// moduleErrorResult resolves call to a statically-known function
// defined in this module whose results include an error, returning the
// function and the error result index. It returns (nil, 0) otherwise.
func moduleErrorResult(pass *Pass, call *ast.CallExpr) (*types.Func, int) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, 0
	}
	module := pass.Config.modulePath()
	path := fn.Pkg().Path()
	if path != module && !strings.HasPrefix(path, module+"/") {
		return nil, 0
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, 0
	}
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return fn, i
		}
	}
	return nil, 0
}

// fnLabel renders a function as pkg.Func or pkg.(Recv).Method.
func fnLabel(fn *types.Func) string {
	pkg := fn.Pkg().Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if named, ok := recv.(*types.Named); ok {
			return pkg + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

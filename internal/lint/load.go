package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, as
// the go tool would resolve them) and type-checks each from source.
// Dependencies — both stdlib and intra-module — are resolved from the
// compiler's export data, which `go list -export` builds on demand, so
// the loader needs nothing beyond the toolchain that builds the repo.
// Test files are not loaded: the lint contracts govern shipped code.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,Export,GoFiles,DepOnly,Standard,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := checkFiles(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkFiles parses and type-checks one package's files. It is shared
// by Load and the testdata fixture loader in tests.
func checkFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		path := gf
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, gf)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

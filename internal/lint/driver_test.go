package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeTree lays out a file tree under dir.
func writeTree(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDriverSyntheticTree lints a synthetic module end-to-end — load,
// policy resolution, analysis, suppression, JSON round-trip — without
// touching the repo's own packages.
func TestDriverSyntheticTree(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module synthetic\n\ngo 1.24\n",
		// det: determinism domain; one walltime hit, one suppressed
		// mapiter hit, one errdiscard hit against its own helper.
		"det/det.go": `package det

import "time"

func Stamp() int64 { return time.Now().UnixNano() }

func Fallible() error { return nil }

func Drop() {
	Fallible()
}

func Merge(m map[string]error) error {
	//lint:allow mapiter any representative error will do
	for _, err := range m {
		if err != nil {
			return err
		}
	}
	return nil
}
`,
		// svc: service domain; wall clock is allowed, discarded module
		// errors are not.
		"svc/svc.go": `package svc

import (
	"time"

	"synthetic/det"
)

func Uptime(start time.Time) time.Duration { return time.Since(start) }

func Drop() { det.Fallible() }
`,
	})

	pkgs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	cfg := &Config{
		ModulePath: "synthetic",
		Policy: func(importPath string) (Domain, []string) {
			if importPath == "synthetic/svc" {
				return DomainService, nil
			}
			return DomainDeterminism, nil
		},
	}
	res := Run(cfg, pkgs)

	type key struct{ analyzer, pkg string }
	got := make(map[key]int)
	for _, f := range res.Findings {
		if !f.Suppressed {
			got[key{f.Analyzer, f.Package}]++
		}
	}
	want := map[key]int{
		{"walltime", "synthetic/det"}:   1,
		{"errdiscard", "synthetic/det"}: 1,
		{"errdiscard", "synthetic/svc"}: 1,
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("%s findings in %s = %d, want %d", k.analyzer, k.pkg, got[k], n)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("unexpected findings: %d × %s in %s", got[k], k.analyzer, k.pkg)
		}
	}
	if c := res.Counts["mapiter"]; c.Suppressed != 1 || c.Findings != 0 {
		t.Errorf("mapiter counts = %+v, want 1 suppressed / 0 findings", c)
	}
	if !res.Failed() {
		t.Error("run with unsuppressed findings must fail")
	}

	// JSON shape: CI consumes {"findings": [...], "counts": {...}} with
	// stable field names.
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Findings []map[string]any          `json:"findings"`
		Counts   map[string]map[string]int `json:"counts"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Findings) != len(res.Findings) {
		t.Fatalf("JSON findings = %d, want %d", len(decoded.Findings), len(res.Findings))
	}
	for _, f := range decoded.Findings {
		for _, field := range []string{"analyzer", "package", "pos", "message"} {
			if _, ok := f[field].(string); !ok {
				t.Errorf("finding %v: field %q missing or not a string", f, field)
			}
		}
		if sup, ok := f["suppressed"].(bool); ok && sup {
			if _, ok := f["reason"].(string); !ok {
				t.Errorf("suppressed finding %v has no reason", f)
			}
		}
	}
	if decoded.Counts["mapiter"]["suppressed"] != 1 {
		t.Errorf("JSON counts[mapiter][suppressed] = %d, want 1", decoded.Counts["mapiter"]["suppressed"])
	}
	if decoded.Counts["walltime"]["findings"] != 1 {
		t.Errorf("JSON counts[walltime][findings] = %d, want 1", decoded.Counts["walltime"]["findings"])
	}
}

// TestDriverCleanTree pins the zero-finding path: a clean module
// yields an empty result that does not fail.
func TestDriverCleanTree(t *testing.T) {
	dir := t.TempDir()
	writeTree(t, dir, map[string]string{
		"go.mod": "module clean\n\ngo 1.24\n",
		"ok/ok.go": `package ok

func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
`,
	})
	pkgs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(&Config{ModulePath: "clean"}, pkgs)
	if len(res.Findings) != 0 {
		t.Fatalf("clean tree produced findings: %+v", res.Findings)
	}
	if res.Failed() {
		t.Error("clean tree must not fail")
	}
}

func TestPolicyFor(t *testing.T) {
	cases := []struct {
		path   string
		domain Domain
		exempt string // one analyzer expected exempt, "" for none
	}{
		{"diads", DomainDeterminism, ""},
		{"diads/internal/sanperf", DomainDeterminism, ""},
		{"diads/internal/fleet", DomainDeterminism, ""},
		{"diads/internal/simtime", DomainDeterminism, "walltime"},
		{"diads/internal/metrics", DomainDeterminism, "readwindow"},
		{"diads/internal/telemetry", DomainService, ""},
		{"diads/internal/telemetry/selfmon", DomainService, ""},
		{"diads/internal/api", DomainService, ""},
		{"diads/cmd/diadsd", DomainTool, ""},
		{"diads/examples/quickstart", DomainTool, ""},
		{"diads/internal/lint", DomainTool, ""},
		// Fail closed: unknown packages get the strict contract.
		{"diads/internal/newdetector", DomainDeterminism, ""},
	}
	for _, c := range cases {
		domain, exempt := PolicyFor(c.path)
		if domain != c.domain {
			t.Errorf("PolicyFor(%s) domain = %s, want %s", c.path, domain, c.domain)
		}
		if c.exempt == "" && len(exempt) != 0 {
			t.Errorf("PolicyFor(%s) exempt = %v, want none", c.path, exempt)
		}
		if c.exempt != "" && !exempted(exempt, c.exempt) {
			t.Errorf("PolicyFor(%s) exempt = %v, want %s", c.path, exempt, c.exempt)
		}
	}
}

func TestValidMetricName(t *testing.T) {
	for name, want := range map[string]bool{
		"diads_runs_total":        true,
		"diads_api_latency_ms_9":  true,
		"diads_":                  false,
		"fleet_depth":             false,
		"diads_WaveSeconds":       false,
		"diads_wave-seconds":      false,
		"prefix_diads_runs_total": false,
	} {
		if got := validMetricName(name); got != want {
			t.Errorf("validMetricName(%q) = %v, want %v", name, got, want)
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// WallTimeAnalyzer forbids wall clocks and the global math/rand
// streams in determinism-domain packages. Inside the determinism
// domain the only time base is simtime.Time and the only randomness is
// a seeded simtime.Rand stream: a time.Now() or rand.Intn() there
// perturbs evidence between runs, which the byte-parity sweeps catch
// only after the fact. Telemetry, service, and API timing live in
// DomainService packages where this rule does not run; a
// determinism-domain package that hosts a telemetry-only timing site
// annotates it with //lint:allow walltime <reason>.
var WallTimeAnalyzer = &Analyzer{
	Name:    "walltime",
	Doc:     "wall-clock or global RNG use in a determinism-domain package",
	Domains: []Domain{DomainDeterminism},
	Run:     runWallTime,
}

// wallTimeFuncs are the package time functions that read the wall
// clock (or schedule against it).
var wallTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true, "Sleep": true,
}

func runWallTime(pass *Pass) {
	for _, file := range pass.Files {
		if isTestFile(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallTimeFuncs[obj.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s in a determinism-domain package: simulated time comes from simtime (or move the timing to a service-domain package)",
						obj.Name())
				}
			case "math/rand", "math/rand/v2":
				// Flag functions and variables (the draws and the
				// global stream); a type in a signature cannot draw.
				switch obj.(type) {
				case *types.Func, *types.Var:
					pass.Reportf(sel.Pos(),
						"%s.%s in a determinism-domain package: randomness comes from seeded simtime.Rand streams",
						obj.Pkg().Path(), obj.Name())
				}
			}
			return true
		})
	}
}

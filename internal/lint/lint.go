// Package lint is the diadslint analyzer suite: a dependency-free
// (go/ast + go/parser + go/token + go/types, no golang.org/x/tools)
// driver plus the repo-specific analyzers that machine-check the
// contracts DESIGN.md states in prose — determinism of everything that
// feeds a rendered report, the single evidence-window definition
// (metrics.ReadWindow), and the statically-enumerable telemetry
// namespace.
//
// The driver loads packages itself by shelling out to `go list -export
// -deps -json` and type-checking each target package from source
// against the toolchain's export data, so the analyzers see full type
// information without importing any third-party loader. Which rules
// apply to which package is a single declarative table in policy.go.
//
// Findings can be suppressed at the site with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory: a bare //lint:allow is itself a finding. Suppressed
// findings still count (cmd/diadslint -counts) so suppression creep
// stays visible in CI logs.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer hit, serializable for CI consumption.
type Finding struct {
	// Analyzer is the rule that fired (mapiter, walltime, readwindow,
	// horizon, metricname, errdiscard, or "directive" for malformed
	// //lint:allow comments, which cannot themselves be suppressed).
	Analyzer string `json:"analyzer"`
	// Package is the import path of the package containing the site.
	Package string `json:"package"`
	// Pos is the file:line:column of the flagged node.
	Pos string `json:"pos"`
	// Message explains the violation and the expected remedy.
	Message string `json:"message"`
	// Suppressed reports whether a //lint:allow directive covers the
	// site. Suppressed findings do not fail the run but are counted.
	Suppressed bool `json:"suppressed,omitempty"`
	// Reason is the suppression reason, when suppressed.
	Reason string `json:"reason,omitempty"`

	line int // position line, for directive matching
	file string
}

// Analyzer is one rule. Run inspects the pass's files and reports
// findings through pass.Report.
type Analyzer struct {
	// Name is the rule name used in findings and //lint:allow comments.
	Name string
	// Doc is the one-line rule description (shown by diadslint -help).
	Doc string
	// Domains lists the policy domains the rule applies to.
	Domains []Domain
	// Run executes the rule over one package.
	Run func(*Pass)
}

// appliesTo reports whether the analyzer runs in domain d.
func (a *Analyzer) appliesTo(d Domain) bool {
	for _, ad := range a.Domains {
		if ad == d {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// ImportPath is the package's import path as go list reports it.
	ImportPath string
	// Domain is the policy domain the package resolved to.
	Domain Domain
	// Config is the driver configuration (module path, policy).
	Config *Config

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Package:  p.ImportPath,
		Pos:      position.String(),
		Message:  fmt.Sprintf(format, args...),
		line:     position.Line,
		file:     position.Filename,
	})
}

// Config parameterizes a lint run. The zero value is completed by
// Default* fallbacks in Run: the diads module path and the repo policy
// table.
type Config struct {
	// ModulePath scopes errdiscard: only errors returned by functions
	// defined under this module are must-handle. Defaults to "diads".
	ModulePath string
	// Policy maps an import path to its domain and per-package rule
	// exemptions. Defaults to PolicyFor (the table in policy.go).
	Policy func(importPath string) (Domain, []string)
}

func (c *Config) modulePath() string {
	if c.ModulePath == "" {
		return "diads"
	}
	return c.ModulePath
}

func (c *Config) policy(importPath string) (Domain, []string) {
	if c.Policy == nil {
		return PolicyFor(importPath)
	}
	return c.Policy(importPath)
}

// Analyzers returns the full rule set in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapIterAnalyzer,
		WallTimeAnalyzer,
		ReadWindowAnalyzer,
		HorizonAnalyzer,
		MetricNameAnalyzer,
		ErrDiscardAnalyzer,
	}
}

// Counts aggregates per-analyzer totals for one run.
type Counts struct {
	// Findings is the number of unsuppressed findings.
	Findings int `json:"findings"`
	// Suppressed is the number of findings covered by //lint:allow.
	Suppressed int `json:"suppressed"`
}

// Result is a completed lint run.
type Result struct {
	Findings []Finding         `json:"findings"`
	Counts   map[string]Counts `json:"counts"`
}

// Failed reports whether the run should fail CI: any unsuppressed
// finding, including malformed directives.
func (r *Result) Failed() bool {
	for _, f := range r.Findings {
		if !f.Suppressed {
			return true
		}
	}
	return false
}

// Run lints the loaded packages with every applicable analyzer and
// resolves suppressions. Findings come back sorted by position.
func Run(cfg *Config, pkgs []*Package) *Result {
	if cfg == nil {
		cfg = &Config{}
	}
	var findings []Finding
	for _, pkg := range pkgs {
		domain, exempt := cfg.policy(pkg.ImportPath)
		dirs, dirFindings := parseDirectives(pkg)
		findings = append(findings, dirFindings...)
		for _, a := range Analyzers() {
			if !a.appliesTo(domain) || exempted(exempt, a.Name) {
				continue
			}
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				ImportPath: pkg.ImportPath,
				Domain:     domain,
				Config:     cfg,
				findings:   &findings,
			}
			a.Run(pass)
		}
		// Resolve suppressions for this package's findings.
		for i := range findings {
			f := &findings[i]
			if f.Package != pkg.ImportPath || f.Suppressed || f.Analyzer == directiveAnalyzer {
				continue
			}
			if reason, ok := dirs.covering(f.file, f.line, f.Analyzer); ok {
				f.Suppressed = true
				f.Reason = reason
			}
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	counts := make(map[string]Counts)
	for _, f := range findings {
		c := counts[f.Analyzer]
		if f.Suppressed {
			c.Suppressed++
		} else {
			c.Findings++
		}
		counts[f.Analyzer] = c
	}
	return &Result{Findings: findings, Counts: counts}
}

func exempted(exempt []string, name string) bool {
	for _, e := range exempt {
		if e == name {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file name is a _test.go file. The
// loader only hands the driver non-test files, but analyzers guard
// anyway so ad-hoc file lists (tests, fixtures) behave identically.
func isTestFile(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

package lint

// Domain classifies how strict the determinism contract is for a
// package. The mapping from import path to domain is the single
// declarative table below — analyzers never hard-code package names.
type Domain string

const (
	// DomainDeterminism covers every package whose output can reach a
	// rendered report, mined symptom, or emitted metric sample: the
	// full rule set applies. Wall clocks and global RNG are forbidden
	// (simtime is the only time base), map iteration must be
	// order-insensitive, and evidence windows must come from
	// metrics.ReadWindow.
	DomainDeterminism Domain = "determinism"
	// DomainService covers the serving/observability layers (worker
	// pool, HTTP API, telemetry) where wall-clock timing is the point.
	// Determinism-only rules (mapiter, walltime) are off; the
	// evidence-window, metric-name, and error-discard contracts still
	// apply.
	DomainService Domain = "service"
	// DomainTool covers binaries, examples, and the linter itself:
	// same rule set as DomainService today, kept distinct so future
	// rules can diverge (and so the policy table documents intent).
	DomainTool Domain = "tool"
)

// policyRule is one row of the policy table: a package (or subtree,
// matching path and path/...) mapped to a domain, with optional
// per-package analyzer exemptions for the packages that *implement*
// a contract and therefore cannot be its clients.
type policyRule struct {
	// Path matches the import path exactly, or any package under it.
	Path string
	// Domain is the policy domain for matching packages.
	Domain Domain
	// Exempt lists analyzer names that do not run on this package.
	Exempt []string
}

// policyTable maps the repo to domains. Longest matching Path wins;
// anything not listed falls back to DomainDeterminism (fail closed:
// new packages inherit the strict contract until a row says
// otherwise).
var policyTable = []policyRule{
	// Contract implementors: simtime *is* the deterministic clock/RNG
	// (it wraps math/rand behind seeded streams), metrics *is* the home
	// of the ReadWindow padding arithmetic.
	// Metrics also implements the retention horizon (truncation anchors
	// prefix sums; ReadWindow is the one padding site), so horizon is
	// off there too.
	{Path: "diads/internal/simtime", Domain: DomainDeterminism, Exempt: []string{"walltime"}},
	{Path: "diads/internal/metrics", Domain: DomainDeterminism, Exempt: []string{"readwindow", "horizon"}},

	// Serving and observability layers: wall-clock timing is a feature
	// (queue waits, span durations, uptime), not a determinism leak —
	// the telemetry on/off parity regression pins that nothing here
	// feeds a report.
	{Path: "diads/internal/telemetry", Domain: DomainService},
	{Path: "diads/internal/service", Domain: DomainService},
	{Path: "diads/internal/api", Domain: DomainService},
	{Path: "diads/internal/pipeline", Domain: DomainService},
	{Path: "diads/internal/selfheal", Domain: DomainService},
	{Path: "diads/internal/cache", Domain: DomainService},

	// Binaries, demos, and the linter itself.
	{Path: "diads/cmd", Domain: DomainTool},
	{Path: "diads/examples", Domain: DomainTool},
	{Path: "diads/internal/lint", Domain: DomainTool},
}

// PolicyFor resolves an import path against the policy table,
// returning the domain and any per-package analyzer exemptions.
func PolicyFor(importPath string) (Domain, []string) {
	best := -1
	domain := DomainDeterminism
	var exempt []string
	for _, r := range policyTable {
		if !pathMatches(r.Path, importPath) || len(r.Path) <= best {
			continue
		}
		best = len(r.Path)
		domain = r.Domain
		exempt = r.Exempt
	}
	return domain, exempt
}

// pathMatches reports whether importPath is rule or lies under rule/.
func pathMatches(rule, importPath string) bool {
	if importPath == rule {
		return true
	}
	return len(importPath) > len(rule) &&
		importPath[:len(rule)] == rule &&
		importPath[len(rule)] == '/'
}
